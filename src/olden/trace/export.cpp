// Exporters for the observability layer: Chrome trace_event JSON
// (Perfetto / chrome://tracing), a compact binary event log, the
// structured stats JSON document, and the human-readable per-processor
// cycle-breakdown table.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>

#include "olden/sample/estimator.hpp"
#include "olden/trace/observer.hpp"

namespace olden::trace {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64 "%s", key, v,
                comma ? "," : "");
  out += buf;
}

bool write_file(const std::string& path, const std::string& body,
                std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok && err != nullptr) *err = "short write to " + path;
  return ok;
}

/// Instant-event scope is per-thread so each event lands on its
/// processor's track.
void append_instant(std::string& out, std::size_t pid, const TraceEvent& e) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%zu,"
                "\"tid\":%u,\"ts\":%" PRIu64 ",\"args\":{",
                to_string(e.kind), pid, e.proc, e.time);
  out += buf;
  if (e.thread != kNoThread) append_kv(out, "thread", e.thread);
  if (e.site != kNoSite) append_kv(out, "site", e.site);
  if (e.chain != kNoChain) append_kv(out, "chain", e.chain);
  append_kv(out, "arg0", e.arg0);
  append_kv(out, "arg1", e.arg1, /*comma=*/false);
  out += "}},\n";
}

/// Migration / return-stub arrivals carry their transit latency in arg1;
/// render them as duration ("X") slices on the destination track so
/// Perfetto shows communication as filled spans.
void append_transit(std::string& out, std::size_t pid, const TraceEvent& e,
                    const char* name) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%zu,\"tid\":%u,"
                "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 ",\"args\":{",
                name, pid, e.proc, e.time - e.arg1, e.arg1);
  out += buf;
  if (e.thread != kNoThread) append_kv(out, "thread", e.thread);
  append_kv(out, "from_proc", e.arg0, /*comma=*/false);
  out += "}},\n";
}

void append_histogram(std::string& out, const Histogram& h) {
  out += "{";
  append_kv(out, "count", h.count());
  append_kv(out, "sum", h.sum());
  append_kv(out, "min", h.min());
  append_kv(out, "max", h.max());
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"mean\":%.3f,", h.mean());
  out += buf;
  out += "\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
    if (h.bucket_count(b) == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "{";
    append_kv(out, "lo", Histogram::bucket_lo(b));
    append_kv(out, "hi", Histogram::bucket_hi(b));
    append_kv(out, "count", h.bucket_count(b), /*comma=*/false);
    out += "}";
  }
  out += "]}";
}

void append_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}
void append_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

/// Name a causal flow arrow after what the child event represents.
const char* flow_name(EventKind child) {
  switch (child) {
    case EventKind::kMigrationArrive: return "migration";
    case EventKind::kReturnStubArrive: return "return_stub";
    case EventKind::kFutureSteal: return "future_steal";
    default: return "causal";
  }
}

void append_estimate(std::string& out, const char* key,
                     const sample::Estimate& e) {
  out += "\"";
  out += key;
  out += "\":{";
  append_kv(out, "estimate", e.value);
  append_kv(out, "ci95", e.ci95, /*comma=*/false);
  out += "}";
}

/// The v5 sampled-run block, emitted between "seconds" and "counters":
/// the pinned window schedule, the integer-exact in-window sums, the
/// extrapolated estimates with 95% CIs, and the provenance partition
/// separating exact fields (machine counters) from estimated ones
/// (cycle buckets, event-kind counts). See docs/SAMPLING.md.
void append_sampled_block(std::string& out, const RunRecord& run) {
  const sample::RunEstimates est =
      sample::estimate(run.sample, run.nprocs, run.makespan);
  out += "\"sampled\":true,\"sample\":{";
  append_kv(out, "window_cycles", run.sample.spec.window);
  append_kv(out, "detail_cycles", run.sample.spec.detail);
  append_kv(out, "offset_cycles", run.sample.spec.offset);
  append_kv(out, "windows", run.sample.windows.size());
  append_kv(out, "measured_cycles", run.sample.measured_cycles,
            /*comma=*/false);
  out += "},\"measured\":{\"bucket_cycles\":{";
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    append_kv(out, to_string(static_cast<CycleBucket>(b)),
              est.measured_buckets[b], /*comma=*/b + 1 < kNumBuckets);
  }
  out += "},\"event_counts\":{";
  bool first = true;
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    if (est.measured_events[k] == 0) continue;
    if (!first) out += ",";
    first = false;
    append_kv(out, to_string(static_cast<EventKind>(k)),
              est.measured_events[k], /*comma=*/false);
  }
  out += "}},\"estimates\":{";
  append_estimate(out, "makespan", est.makespan);
  out += ",\"buckets\":{";
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (b != 0) out += ",";
    append_estimate(out, to_string(static_cast<CycleBucket>(b)),
                    est.buckets[b]);
  }
  out += "},\"event_counts\":{";
  first = true;
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    if (est.measured_events[k] == 0) continue;
    if (!first) out += ",";
    first = false;
    append_estimate(out, to_string(static_cast<EventKind>(k)),
                    est.event_counts[k]);
  }
  out += "}},\"provenance\":{\"exact\":[";
  first = true;
  for (const auto& [k, v] : run.counters) {
    (void)v;
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_escaped(out, k);
    out += "\"";
  }
  out += "],\"estimated\":[";
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (b != 0) out += ",";
    out += "\"";
    out += to_string(static_cast<CycleBucket>(b));
    out += "\"";
  }
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    if (est.measured_events[k] == 0) continue;
    out += ",\"";
    out += to_string(static_cast<EventKind>(k));
    out += "\"";
  }
  out += "]},";
}

/// One Perfetto flow arrow: "s" (start) at the parent event, "f" with
/// bp:"e" (finish, bind to enclosing) at the child. Perfetto matches the
/// two halves on (cat, id).
void append_flow(std::string& out, std::size_t pid, const TraceEvent& parent,
                 const TraceEvent& child, std::uint64_t flow_id) {
  const char* name = flow_name(child.kind);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"causal\",\"ph\":\"s\","
                "\"id\":%" PRIu64 ",\"pid\":%zu,\"tid\":%u,\"ts\":%" PRIu64
                "},\n",
                name, flow_id, pid, parent.proc, parent.time);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\","
                "\"id\":%" PRIu64 ",\"pid\":%zu,\"tid\":%u,\"ts\":%" PRIu64
                "},\n",
                name, flow_id, pid, child.proc, child.time);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const Observer& obs) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t pid = 0; pid < obs.runs().size(); ++pid) {
    const RunRecord& run = obs.runs()[pid];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,"
                  "\"args\":{\"name\":\"",
                  pid);
    out += buf;
    append_escaped(out, run.label);
    out += "\"}},\n";
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%zu,"
                  "\"args\":{\"sort_index\":%zu}},\n",
                  pid, pid);
    out += buf;
    for (ProcId p = 0; p < run.nprocs; ++p) {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%zu,"
                    "\"tid\":%u,\"args\":{\"name\":\"proc %u\"}},\n",
                    pid, p, p);
      out += buf;
    }
    // Index retained events by id so causal parents can be located; a
    // parent that was dropped at the trace limit simply gets no arrow.
    std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
    by_id.reserve(run.events.size());
    for (const TraceEvent& e : run.events) by_id.emplace(e.id, &e);
    for (const TraceEvent& e : run.events) {
      switch (e.kind) {
        case EventKind::kMigrationArrive:
          append_transit(out, pid, e, "migration");
          break;
        case EventKind::kReturnStubArrive:
          append_transit(out, pid, e, "return_stub");
          break;
        default:
          append_instant(out, pid, e);
      }
      if (e.parent == kNoEvent) continue;
      const auto it = by_id.find(e.parent);
      // Draw arrows only for cross-processor causality: same-track links
      // are already visible as event order, and Perfetto renders them as
      // clutter.
      if (it == by_id.end() || it->second->proc == e.proc) continue;
      const std::uint64_t flow_id =
          (static_cast<std::uint64_t>(pid) << 40) | e.id;
      append_flow(out, pid, *it->second, e, flow_id);
    }
  }
  // Closing sentinel avoids trailing-comma bookkeeping and marks the
  // export as complete.
  out += "{\"name\":\"olden_trace_end\",\"ph\":\"M\",\"pid\":0,\"args\":{}}\n";
  out += "]}\n";
  return out;
}

bool write_chrome_trace(const Observer& obs, const std::string& path,
                        std::string* err) {
  return write_file(path, chrome_trace_json(obs), err);
}

std::string binary_trace_bytes(const Observer& obs) {
  std::string out;
  out.append(kBinaryTraceMagic, sizeof kBinaryTraceMagic);
  append_u32le(out, static_cast<std::uint32_t>(kBinaryTraceVersion));
  append_u32le(out, static_cast<std::uint32_t>(obs.runs().size()));
  for (const RunRecord& run : obs.runs()) {
    append_u32le(out, static_cast<std::uint32_t>(run.label.size()));
    out += run.label;
    append_u32le(out, run.nprocs);
    append_u64le(out, run.makespan);
    append_u64le(out, run.events_dropped);
    append_u64le(out, run.events.size());
    for (const TraceEvent& e : run.events) {
      append_u64le(out, e.time);
      append_u32le(out, e.proc);
      append_u64le(out, e.thread);
      out += static_cast<char>(e.kind);
      out.append(3, '\0');
      append_u32le(out, e.site);
      append_u64le(out, e.arg0);
      append_u64le(out, e.arg1);
      append_u64le(out, e.id);
      append_u64le(out, e.chain);
      append_u64le(out, e.parent);
    }
  }
  return out;
}

bool write_binary_trace(const Observer& obs, const std::string& path,
                        std::string* err) {
  return write_file(path, binary_trace_bytes(obs), err);
}

std::string stats_json(const Observer& obs) {
  std::string out;
  out.reserve(1 << 14);
  out += "{\"schema_version\":";
  out += std::to_string(kStatsSchemaVersion);
  out += ",\"generator\":\"olden-trace\",";
  // Top-level truncation flag: consumers (the analyzer, the bench harness)
  // check one place to learn the event stream is incomplete.
  bool truncated = false;
  for (const RunRecord& run : obs.runs()) {
    truncated = truncated || run.events_dropped > 0;
  }
  out += "\"trace_truncated\":";
  out += truncated ? "true" : "false";
  out += ",\"runs\":[";
  bool first_run = true;
  for (const RunRecord& run : obs.runs()) {
    if (!first_run) out += ",";
    first_run = false;
    out += "\n{\"label\":\"";
    append_escaped(out, run.label);
    out += "\",\"config\":{";
    append_kv(out, "nprocs", run.nprocs);
    out += "\"scheme\":\"";
    append_escaped(out, run.scheme);
    out += "\",\"sequential_baseline\":";
    out += run.sequential_baseline ? "true" : "false";
    for (const auto& [k, v] : run.meta) {
      out += ",\"";
      append_escaped(out, k);
      out += "\":\"";
      append_escaped(out, v);
      out += "\"";
    }
    out += "},";
    append_kv(out, "makespan_cycles", run.makespan);
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"seconds\":%.9f,",
                  cycles_to_seconds(run.makespan));
    out += buf;
    if (run.sample.enabled) append_sampled_block(out, run);
    out += "\"counters\":{";
    bool first = true;
    for (const auto& [k, v] : run.counters) {
      if (!first) out += ",";
      first = false;
      append_kv(out, k.c_str(), v, /*comma=*/false);
    }
    out += "},\"fault_classes\":{";
    first = true;
    for (std::size_t i = 0; i < kNumMsgClasses; ++i) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += to_string(static_cast<MsgClass>(i));
      out += "\":{";
      append_kv(out, "sent", run.class_sent[i]);
      append_kv(out, "drops", run.class_drops[i]);
      append_kv(out, "dups", run.class_dups[i]);
      append_kv(out, "delays", run.class_delays[i]);
      append_kv(out, "retries", run.class_retries[i], /*comma=*/false);
      out += "}";
    }
    out += "},\"histograms\":{";
    first = true;
    for (std::size_t h = 0; h < kNumHists; ++h) {
      if (run.hists[h].empty()) continue;
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += to_string(static_cast<Hist>(h));
      out += "\":";
      append_histogram(out, run.hists[h]);
    }
    out += "},\"breakdown\":[";
    // Sampled runs keep no per-processor breakdown (their rows would not
    // satisfy the per-proc conservation rule); the array stays empty.
    for (ProcId p = 0; p < run.nprocs && !run.breakdown.empty(); ++p) {
      if (p != 0) out += ",";
      out += "{";
      append_kv(out, "proc", p);
      for (std::size_t b = 0; b < kNumBuckets; ++b) {
        append_kv(out, to_string(static_cast<CycleBucket>(b)),
                  run.breakdown[p][b]);
      }
      append_kv(out, "clock", run.proc_clock[p], /*comma=*/false);
      out += "}";
    }
    out += "],\"events\":{\"counts\":{";
    first = true;
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
      if (run.event_counts[k] == 0) continue;
      if (!first) out += ",";
      first = false;
      append_kv(out, to_string(static_cast<EventKind>(k)),
                run.event_counts[k], /*comma=*/false);
    }
    out += "},";
    append_kv(out, "retained", run.events.size() + run.events_streamed);
    append_kv(out, "dropped", run.events_dropped, /*comma=*/false);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool write_stats_json(const Observer& obs, const std::string& path,
                      std::string* err) {
  return write_file(path, stats_json(obs), err);
}

std::string breakdown_table(const RunRecord& run) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "cycle breakdown: %s (makespan %" PRIu64
                                 " cycles, %.6f s)\n",
                run.label.c_str(), run.makespan,
                cycles_to_seconds(run.makespan));
  out += buf;
  std::snprintf(buf, sizeof buf, "%-6s %12s %12s %12s %12s %12s %12s %12s\n",
                "proc", "compute", "migration", "cache_stall", "coherence",
                "idle", "retry", "clock");
  out += buf;
  auto row = [&](const char* name, const BucketCycles& b, Cycles clock) {
    std::snprintf(buf, sizeof buf,
                  "%-6s %12" PRIu64 " %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                  " %12" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n",
                  name, b[0], b[1], b[2], b[3], b[4], b[5], clock);
    out += buf;
  };
  Cycles clock_total = 0;
  for (ProcId p = 0; p < run.nprocs; ++p) {
    char name[16];
    std::snprintf(name, sizeof name, "%u", p);
    row(name, run.breakdown[p], run.proc_clock[p]);
    clock_total += run.proc_clock[p];
  }
  const BucketCycles t = run.bucket_totals();
  row("total", t, clock_total);
  const std::uint64_t busy_total =
      t[0] + t[1] + t[2] + t[3] + t[4] + t[5];
  if (busy_total > 0) {
    std::snprintf(buf, sizeof buf,
                  "%-6s %11.1f%% %11.1f%% %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
                  "",
                  100.0 * static_cast<double>(t[0]) / busy_total,
                  100.0 * static_cast<double>(t[1]) / busy_total,
                  100.0 * static_cast<double>(t[2]) / busy_total,
                  100.0 * static_cast<double>(t[3]) / busy_total,
                  100.0 * static_cast<double>(t[4]) / busy_total,
                  100.0 * static_cast<double>(t[5]) / busy_total);
    out += buf;
  }
  return out;
}

std::string sample_table(const RunRecord& run) {
  std::string out;
  char buf[256];
  const sample::RunSample& s = run.sample;
  std::snprintf(buf, sizeof buf,
                "sampled run: %s (makespan %" PRIu64 " cycles)\n",
                run.label.c_str(), run.makespan);
  out += buf;
  const double pct =
      run.makespan == 0
          ? 0.0
          : 100.0 * static_cast<double>(s.measured_cycles) /
                static_cast<double>(run.makespan);
  std::snprintf(buf, sizeof buf,
                "schedule %s: %zu windows, %" PRIu64
                " measured cycles (%.2f%% of the run)\n",
                sample::to_string(s.spec).c_str(), s.windows.size(),
                s.measured_cycles, pct);
  out += buf;
  const sample::RunEstimates est =
      sample::estimate(s, run.nprocs, run.makespan);
  std::snprintf(buf, sizeof buf, "%-12s %16s %16s %16s\n", "bucket",
                "measured", "estimate", "ci95");
  out += buf;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    std::snprintf(buf, sizeof buf,
                  "%-12s %16" PRIu64 " %16" PRIu64 " %16" PRIu64 "\n",
                  to_string(static_cast<CycleBucket>(b)),
                  est.measured_buckets[b], est.buckets[b].value,
                  est.buckets[b].ci95);
    out += buf;
  }
  return out;
}

}  // namespace olden::trace
