// Voronoi: Voronoi diagram of a point set (Table 1, [19]).
//
// The classic Guibas-Stolfi divide-and-conquer Delaunay construction on a
// quad-edge subdivision (the Voronoi diagram is its dual; Olden's version
// likewise builds the Delaunay structure). Points are sorted by x and
// distributed blocked, so each half of the recursion is co-located; the
// subproblems run in parallel (futurecalls); the merge phase walks the
// convex hulls of the two sub-diagrams "alternating between them in an
// irregular fashion".
//
// Heuristic behaviour (§5): the merge's hull walks are unpredictable, so
// the computation pins on the processor owning one subresult and *caches*
// the other — the paper notes this heuristic choice beats migrate-only
// dramatically (8.76x vs 0.47x at 32) yet is still not optimal;
// bench/ablation_voronoi explores that gap.
//
// Quad-edges live in the distributed heap as blocks of four 8-byte
// quarter-edge records; an edge reference is the block's global address
// with the rotation in the low two bits, so Rot/Sym are pure arithmetic
// exactly as in the paper's 32-bit encoded pointers.
#include <algorithm>
#include <cmath>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"
#include "olden/support/rng.hpp"

namespace olden::bench {
namespace {

constexpr Cycles kWorkPerPredicate = 80;
constexpr Cycles kWorkPerEdgeOp = 50;

struct Pt {
  double x, y;
};

/// One quarter-edge: its onext reference and origin point index (or -1
/// for the dual/face quarters, -2 once deleted).
struct QRec {
  std::uint32_t next;
  std::int32_t org;
};

enum Site : SiteId {
  kPtMigrate,  // first touch of a subproblem's range: migrates the body
  kPt,         // point coordinate reads during the merge (cache)
  kNext,       // onext reads/writes (cache)
  kOrg,        // origin reads/writes (cache)
  kInit,
  kNumSites
};

int points_for(const BenchConfig& cfg) {
  if (cfg.tiny) return 1024;
  return cfg.paper_size ? 65536 : 16384;
}

// --- edge-reference arithmetic (shared by both implementations) ----------

using ERef = std::uint32_t;  // block base | rotation
constexpr ERef kNoEdge = 0;

constexpr ERef rot(ERef e) { return (e & ~3u) | ((e + 1) & 3u); }
constexpr ERef invrot(ERef e) { return (e & ~3u) | ((e + 3) & 3u); }
constexpr ERef esym(ERef e) { return e ^ 2u; }

bool ccw(const Pt& a, const Pt& b, const Pt& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x) > 0;
}

/// d strictly inside the circumcircle of ccw triangle (a, b, c).
bool in_circle(const Pt& a, const Pt& b, const Pt& c, const Pt& d) {
  const double adx = a.x - d.x, ady = a.y - d.y;
  const double bdx = b.x - d.x, bdy = b.y - d.y;
  const double cdx = c.x - d.x, cdy = c.y - d.y;
  const double ad2 = adx * adx + ady * ady;
  const double bd2 = bdx * bdx + bdy * bdy;
  const double cd2 = cdx * cdx + cdy * cdy;
  const double det = adx * (bdy * cd2 - bd2 * cdy) -
                     ady * (bdx * cd2 - bd2 * cdx) +
                     ad2 * (bdx * cdy - bdy * cdx);
  return det > 0;
}

std::vector<Pt> make_points(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Pt> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) {
    p.x = rng.next_double();
    p.y = rng.next_double();
  }
  std::sort(pts.begin(), pts.end(), [](const Pt& a, const Pt& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  });
  return pts;
}

// ---------------------------------------------------------------------------
// Host reference implementation (plain arrays).
// ---------------------------------------------------------------------------

struct HostSubdivision {
  const std::vector<Pt>& pts;
  std::vector<QRec> recs;  // 4 per edge block

  explicit HostSubdivision(const std::vector<Pt>& p) : pts(p) {
    recs.reserve(p.size() * 16);
  }

  // ERef encoding on host: (block_index * 4 + rot) + 4, so ERef 0 is
  // never a real edge and the base keeps its low two bits clear.
  QRec& rec(ERef e) { return recs[e - 4]; }
  const QRec& rec(ERef e) const { return recs[e - 4]; }
  std::uint32_t onext(ERef e) { return rec(e).next; }
  std::int32_t org(ERef e) { return rec(e).org; }
  std::int32_t dest(ERef e) { return rec(esym(e)).org; }
  ERef oprev(ERef e) { return rot(onext(rot(e))); }
  ERef lnext(ERef e) { return rot(onext(invrot(e))); }
  ERef rprev(ERef e) { return onext(esym(e)); }
  const Pt& org_pt(ERef e) { return pts[static_cast<std::size_t>(org(e))]; }
  const Pt& dest_pt(ERef e) { return pts[static_cast<std::size_t>(dest(e))]; }

  ERef make_edge(std::int32_t o, std::int32_t d) {
    const ERef e = static_cast<ERef>(recs.size()) + 4;
    recs.push_back(QRec{e, o});           // e
    recs.push_back(QRec{invrot(e), -1});  // rot(e)
    recs.push_back(QRec{esym(e), d});     // sym(e)
    recs.push_back(QRec{rot(e), -1});     // invrot(e)
    return e;
  }

  void splice(ERef a, ERef b) {
    const ERef alpha = rot(onext(a));
    const ERef beta = rot(onext(b));
    const ERef an = onext(a);
    const ERef bn = onext(b);
    rec(a).next = bn;
    rec(b).next = an;
    const ERef alphan = onext(alpha);
    const ERef betan = onext(beta);
    rec(alpha).next = betan;
    rec(beta).next = alphan;
  }

  ERef connect(ERef a, ERef b) {
    const ERef e = make_edge(dest(a), org(b));
    splice(e, lnext(a));
    splice(esym(e), b);
    return e;
  }

  void delete_edge(ERef e) {
    splice(e, oprev(e));
    splice(esym(e), oprev(esym(e)));
    rec(e).org = -2;
    rec(esym(e)).org = -2;
  }

  bool right_of(const Pt& p, ERef e) { return ccw(p, dest_pt(e), org_pt(e)); }
  bool left_of(const Pt& p, ERef e) { return ccw(p, org_pt(e), dest_pt(e)); }

  struct LR {
    ERef le, re;
  };

  LR delaunay(int lo, int hi) {  // [lo, hi)
    const int n = hi - lo;
    if (n == 2) {
      const ERef a = make_edge(lo, lo + 1);
      return {a, esym(a)};
    }
    if (n == 3) {
      const ERef a = make_edge(lo, lo + 1);
      const ERef b = make_edge(lo + 1, lo + 2);
      splice(esym(a), b);
      const Pt& p1 = pts[static_cast<std::size_t>(lo)];
      const Pt& p2 = pts[static_cast<std::size_t>(lo + 1)];
      const Pt& p3 = pts[static_cast<std::size_t>(lo + 2)];
      if (ccw(p1, p2, p3)) {
        connect(b, a);
        return {a, esym(b)};
      }
      if (ccw(p1, p3, p2)) {
        const ERef c = connect(b, a);
        return {esym(c), c};
      }
      return {a, esym(b)};  // collinear
    }
    const int mid = lo + n / 2;
    LR left = delaunay(lo, mid);
    LR right = delaunay(mid, hi);
    ERef ldo = left.le, ldi = left.re;
    ERef rdi = right.le, rdo = right.re;
    // Lower common tangent.
    for (;;) {
      if (left_of(org_pt(rdi), ldi)) {
        ldi = lnext(ldi);
      } else if (right_of(org_pt(ldi), rdi)) {
        rdi = rprev(rdi);
      } else {
        break;
      }
    }
    ERef basel = connect(esym(rdi), ldi);
    if (org(ldi) == org(ldo)) ldo = esym(basel);
    if (org(rdi) == org(rdo)) rdo = basel;
    // Merge loop.
    for (;;) {
      ERef lcand = onext(esym(basel));
      if (right_of(dest_pt(lcand), basel)) {
        while (in_circle(dest_pt(basel), org_pt(basel), dest_pt(lcand),
                         dest_pt(onext(lcand)))) {
          const ERef t = onext(lcand);
          delete_edge(lcand);
          lcand = t;
        }
      }
      ERef rcand = oprev(basel);
      if (right_of(dest_pt(rcand), basel)) {
        while (in_circle(dest_pt(basel), org_pt(basel), dest_pt(rcand),
                         dest_pt(oprev(rcand)))) {
          const ERef t = oprev(rcand);
          delete_edge(rcand);
          rcand = t;
        }
      }
      const bool lvalid = right_of(dest_pt(lcand), basel);
      const bool rvalid = right_of(dest_pt(rcand), basel);
      if (!lvalid && !rvalid) break;
      if (!lvalid || (rvalid && in_circle(dest_pt(lcand), org_pt(lcand),
                                          org_pt(rcand), dest_pt(rcand)))) {
        basel = connect(rcand, esym(basel));
      } else {
        basel = connect(esym(basel), esym(lcand));
      }
    }
    return {ldo, rdo};
  }

  /// (live edge count, commutative hash of endpoint pairs).
  std::pair<std::uint64_t, std::uint64_t> census() const {
    std::uint64_t count = 0;
    std::uint64_t hash = 0;
    for (std::size_t blk = 0; blk + 3 < recs.size(); blk += 4) {
      const QRec& e0 = recs[blk];
      const QRec& e2 = recs[blk + 2];
      if (e0.org < 0 || e2.org < 0) continue;
      ++count;
      const std::uint64_t a = static_cast<std::uint32_t>(
          e0.org < e2.org ? e0.org : e2.org);
      const std::uint64_t b = static_cast<std::uint32_t>(
          e0.org < e2.org ? e2.org : e0.org);
      hash += (a * 2654435761ULL) ^ (b * 0x9e3779b97f4a7c15ULL);
    }
    return {count, hash};
  }
};

// ---------------------------------------------------------------------------
// Simulated implementation: same algorithm, quad-edges in the distributed
// heap, subproblems futurecalled and migrated to their point ranges.
// ---------------------------------------------------------------------------

class SimSubdivision {
 public:
  SimSubdivision(Machine& m, const std::vector<GPtr<Pt>>& addr)
      : m_(m), addr_(addr) {}

  Machine& m_;
  const std::vector<GPtr<Pt>>& addr_;  // point index -> heap address
  std::vector<GPtr<QRec>> blocks_;     // every allocated 4-record block

  Task<Pt> point(std::int32_t i, SiteId site) {
    co_return co_await rd_obj(addr_[static_cast<std::size_t>(i)], site);
  }

  // An ERef is the global byte address of the block (32-byte, 8-aligned —
  // low two bits free) with the rotation in the low bits.
  static GPtr<QRec> rec_of(ERef e) {
    return GPtr<QRec>(GlobalAddr((e & ~3u) + (e & 3u) * sizeof(QRec)));
  }

  Task<std::uint32_t> onext(ERef e) {
    co_return co_await rd(rec_of(e), &QRec::next, kNext);
  }
  Task<int> set_onext(ERef e, ERef v) {
    co_await wr(rec_of(e), &QRec::next, v, kNext);
    co_return 0;
  }
  Task<std::int32_t> org(ERef e) {
    co_return co_await rd(rec_of(e), &QRec::org, kOrg);
  }
  Task<std::int32_t> dest(ERef e) { co_return co_await org(esym(e)); }
  Task<ERef> oprev(ERef e) { co_return rot(co_await onext(rot(e))); }
  Task<ERef> lnext(ERef e) { co_return rot(co_await onext(invrot(e))); }
  Task<ERef> rprev(ERef e) { co_return co_await onext(esym(e)); }
  Task<Pt> org_pt(ERef e) { co_return co_await point(co_await org(e), kPt); }
  Task<Pt> dest_pt(ERef e) { co_return co_await point(co_await dest(e), kPt); }

  Task<ERef> make_edge(std::int32_t o, std::int32_t d) {
    auto blk = m_.alloc_array<QRec>(m_.cur_proc(), 4);
    blocks_.push_back(blk);
    const ERef e = blk.addr().raw();
    OLDEN_REQUIRE((e & 7u) == 0, "edge block must be 8-aligned");
    co_await wr(rec_of(e), &QRec::next, e, kInit);
    co_await wr(rec_of(e), &QRec::org, o, kInit);
    co_await wr(rec_of(rot(e)), &QRec::next, invrot(e), kInit);
    co_await wr(rec_of(rot(e)), &QRec::org, std::int32_t{-1}, kInit);
    co_await wr(rec_of(esym(e)), &QRec::next, esym(e), kInit);
    co_await wr(rec_of(esym(e)), &QRec::org, d, kInit);
    co_await wr(rec_of(invrot(e)), &QRec::next, rot(e), kInit);
    co_await wr(rec_of(invrot(e)), &QRec::org, std::int32_t{-1}, kInit);
    m_.work(kWorkPerEdgeOp);
    co_return e;
  }

  Task<int> splice(ERef a, ERef b) {
    const ERef an = co_await onext(a);
    const ERef bn = co_await onext(b);
    const ERef alpha = rot(an);
    const ERef beta = rot(bn);
    const ERef alphan = co_await onext(alpha);
    const ERef betan = co_await onext(beta);
    co_await set_onext(a, bn);
    co_await set_onext(b, an);
    co_await set_onext(alpha, betan);
    co_await set_onext(beta, alphan);
    m_.work(kWorkPerEdgeOp);
    co_return 0;
  }

  Task<ERef> connect(ERef a, ERef b) {
    const ERef e =
        co_await make_edge(co_await dest(a), co_await org(b));
    co_await splice(e, co_await lnext(a));
    co_await splice(esym(e), b);
    co_return e;
  }

  Task<int> delete_edge(ERef e) {
    co_await splice(e, co_await oprev(e));
    co_await splice(esym(e), co_await oprev(esym(e)));
    co_await wr(rec_of(e), &QRec::org, std::int32_t{-2}, kOrg);
    co_await wr(rec_of(esym(e)), &QRec::org, std::int32_t{-2}, kOrg);
    co_return 0;
  }

  Task<bool> right_of(Pt p, ERef e) {
    const Pt d = co_await dest_pt(e);
    const Pt o = co_await org_pt(e);
    m_.work(kWorkPerPredicate);
    co_return ccw(p, d, o);
  }
  Task<bool> left_of(Pt p, ERef e) {
    const Pt o = co_await org_pt(e);
    const Pt d = co_await dest_pt(e);
    m_.work(kWorkPerPredicate);
    co_return ccw(p, o, d);
  }

  struct LR {
    ERef le, re;
  };

  Task<LR> delaunay(int lo, int hi, ProcId plo, ProcId phi) {
    // Migrate this subproblem's thread to the processor owning its range
    // (in the Olden original this is the dereference of the point-tree
    // node, hinted high-affinity).
    co_await rd(addr_[static_cast<std::size_t>(lo)], &Pt::x, kPtMigrate);
    const int n = hi - lo;
    if (n == 2) {
      const ERef a = co_await make_edge(lo, lo + 1);
      co_return LR{a, esym(a)};
    }
    if (n == 3) {
      const ERef a = co_await make_edge(lo, lo + 1);
      const ERef b = co_await make_edge(lo + 1, lo + 2);
      co_await splice(esym(a), b);
      const Pt p1 = co_await point(lo, kPt);
      const Pt p2 = co_await point(lo + 1, kPt);
      const Pt p3 = co_await point(lo + 2, kPt);
      m_.work(kWorkPerPredicate);
      if (ccw(p1, p2, p3)) {
        co_await connect(b, a);
        co_return LR{a, esym(b)};
      }
      if (ccw(p1, p3, p2)) {
        const ERef c = co_await connect(b, a);
        co_return LR{esym(c), c};
      }
      co_return LR{a, esym(b)};
    }
    const int mid = lo + n / 2;
    const ProcId pmid = static_cast<ProcId>((plo + phi + 1) / 2);
    LR left{}, right{};
    if (n >= 8) {
      // The parent sits at the low end of its range, so the upper half is
      // the remote one: futurecall it (its body migrates away at its
      // first point dereference, leaving this continuation stealable) and
      // compute the local half inline.
      auto fr = co_await futurecall(delaunay(mid, hi, pmid, phi));
      left = co_await delaunay(lo, mid, plo, pmid);
      right = co_await touch(fr);
    } else {
      left = co_await delaunay(lo, mid, plo, pmid);
      right = co_await delaunay(mid, hi, pmid, phi);
    }
    ERef ldo = left.le, ldi = left.re;
    ERef rdi = right.le, rdo = right.re;
    for (;;) {
      if (co_await left_of(co_await org_pt(rdi), ldi)) {
        ldi = co_await lnext(ldi);
      } else if (co_await right_of(co_await org_pt(ldi), rdi)) {
        rdi = co_await rprev(rdi);
      } else {
        break;
      }
    }
    ERef basel = co_await connect(esym(rdi), ldi);
    if (co_await org(ldi) == co_await org(ldo)) ldo = esym(basel);
    if (co_await org(rdi) == co_await org(rdo)) rdo = basel;
    for (;;) {
      ERef lcand = co_await onext(esym(basel));
      if (co_await right_of(co_await dest_pt(lcand), basel)) {
        for (;;) {
          const Pt bd = co_await dest_pt(basel);
          const Pt bo = co_await org_pt(basel);
          const Pt ld = co_await dest_pt(lcand);
          const Pt lnd = co_await dest_pt(co_await onext(lcand));
          m_.work(kWorkPerPredicate);
          if (!in_circle(bd, bo, ld, lnd)) break;
          const ERef t = co_await onext(lcand);
          co_await delete_edge(lcand);
          lcand = t;
        }
      }
      ERef rcand = co_await oprev(basel);
      if (co_await right_of(co_await dest_pt(rcand), basel)) {
        for (;;) {
          const Pt bd = co_await dest_pt(basel);
          const Pt bo = co_await org_pt(basel);
          const Pt rd2 = co_await dest_pt(rcand);
          const Pt rpd = co_await dest_pt(co_await oprev(rcand));
          m_.work(kWorkPerPredicate);
          if (!in_circle(bd, bo, rd2, rpd)) break;
          const ERef t = co_await oprev(rcand);
          co_await delete_edge(rcand);
          rcand = t;
        }
      }
      const bool lvalid = co_await right_of(co_await dest_pt(lcand), basel);
      const bool rvalid = co_await right_of(co_await dest_pt(rcand), basel);
      if (!lvalid && !rvalid) break;
      if (!lvalid ||
          (rvalid && in_circle(co_await dest_pt(lcand), co_await org_pt(lcand),
                               co_await org_pt(rcand),
                               co_await dest_pt(rcand)))) {
        basel = co_await connect(rcand, esym(basel));
      } else {
        basel = co_await connect(esym(basel), esym(lcand));
      }
      m_.work(kWorkPerPredicate);
    }
    co_return LR{ldo, rdo};
  }

  Task<std::pair<std::uint64_t, std::uint64_t>> census() {
    std::uint64_t count = 0;
    std::uint64_t hash = 0;
    for (const auto& blk : blocks_) {
      const ERef e = blk.addr().raw();
      const auto o = co_await rd(rec_of(e), &QRec::org, kOrg);
      const auto d = co_await rd(rec_of(esym(e)), &QRec::org, kOrg);
      if (o < 0 || d < 0) continue;
      ++count;
      const std::uint64_t a = static_cast<std::uint32_t>(o < d ? o : d);
      const std::uint64_t b = static_cast<std::uint32_t>(o < d ? d : o);
      hash += (a * 2654435761ULL) ^ (b * 0x9e3779b97f4a7c15ULL);
    }
    co_return std::pair{count, hash};
  }
};

struct RootOut {
  std::uint64_t checksum = 0;
  std::uint64_t edges = 0;
  Cycles build_end = 0;
};

/// The <proc, local> address encoding cannot make one array span
/// processors, so points live in per-processor slabs (blocked by sorted x,
/// which co-locates each recursion range) with a host-side index table —
/// the stand-in for Olden's distributed point tree.
Task<RootOut> voronoi_root(Machine& m, const std::vector<Pt>& pts,
                           RootOut& out) {
  const int n = static_cast<int>(pts.size());
  std::vector<GPtr<Pt>> addr(static_cast<std::size_t>(n));
  {
    int i = 0;
    while (i < n) {
      const ProcId owner = block_owner(static_cast<std::uint64_t>(i),
                                       static_cast<std::uint64_t>(n),
                                       m.nprocs());
      int j = i;
      while (j < n && block_owner(static_cast<std::uint64_t>(j),
                                  static_cast<std::uint64_t>(n),
                                  m.nprocs()) == owner) {
        ++j;
      }
      auto slab = m.alloc_array<Pt>(owner, static_cast<std::uint32_t>(j - i));
      for (int k = i; k < j; ++k) {
        addr[static_cast<std::size_t>(k)] =
            slab.at(static_cast<std::uint32_t>(k - i));
        co_await wr(addr[static_cast<std::size_t>(k)], &Pt::x,
                    pts[static_cast<std::size_t>(k)].x, kInit);
        co_await wr(addr[static_cast<std::size_t>(k)], &Pt::y,
                    pts[static_cast<std::size_t>(k)].y, kInit);
      }
      i = j;
    }
  }
  out.build_end = m.now_max();
  SimSubdivision sub(m, addr);
  co_await sub.delaunay(0, n, 0, m.nprocs());
  const auto [count, hash] = co_await sub.census();
  out.edges = count;
  out.checksum = mix_checksum(count, hash);
  co_return out;
}

class Voronoi final : public Benchmark {
 public:
  std::string name() const override { return "Voronoi"; }
  std::string description() const override {
    return "Computes the Voronoi Diagram of a set of points";
  }
  std::string problem_size(bool paper) const override {
    return paper ? "64K points" : "16K points";
  }
  bool whole_program_timing() const override { return false; }
  std::string heuristic_choice() const override { return "M+C"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    // The merge walks subresult hulls unpredictably: low-affinity edge
    // links. The recursion itself descends a high-affinity point tree.
    p.structs = {{"edge", {{"onext", 0.50}, {"org", 0.50}}},
                 {"ptree", {{"left", 0.95}, {"right", 0.95}}}};

    Procedure mw;  // merge hull walk
    mw.name = "merge_walk";
    mw.params = {"e"};
    While w;
    w.loop_id = 1;
    w.body.push_back(deref("e", kPt));
    w.body.push_back(assign("e", "e", {{"edge", "onext"}}, SiteId{kNext}));
    w.body.push_back(deref("e", kOrg));
    mw.body.push_back(std::move(w));
    p.procs.push_back(std::move(mw));

    Procedure dl;
    dl.name = "delaunay";
    dl.params = {"t"};
    dl.rec_loop_id = 0;
    If br;
    Call cl;
    cl.callee = "delaunay";
    cl.args = {{"t", {{"ptree", "left"}}}};
    cl.future = true;
    Call cr;
    cr.callee = "delaunay";
    cr.args = {{"t", {{"ptree", "right"}}}};
    br.else_branch.push_back(deref("t", kPtMigrate));
    br.else_branch.push_back(cl);
    br.else_branch.push_back(cr);
    Call mwc;
    mwc.callee = "merge_walk";
    mwc.args = {{"t", {{"ptree", "left"}}}};
    br.else_branch.push_back(mwc);
    dl.body.push_back(std::move(br));
    p.procs.push_back(std::move(dl));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    return {{kInit, Mechanism::kMigrate}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    const auto pts = make_points(points_for(cfg), cfg.seed);
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    RootOut out;
    run_program(m, voronoi_root(m, pts, out));
    res.checksum = out.checksum;
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    const auto pts = make_points(points_for(cfg), cfg.seed);
    HostSubdivision hs(pts);
    hs.delaunay(0, static_cast<int>(pts.size()));
    const auto [count, hash] = hs.census();
    return mix_checksum(count, hash);
  }
};

}  // namespace

const Benchmark& voronoi_benchmark() {
  static const Voronoi b;
  return b;
}

}  // namespace olden::bench
