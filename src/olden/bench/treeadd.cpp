// TreeAdd: adds the values in a binary tree (Table 1; Figure 4).
//
// The paper's simplest benchmark: a 1024K-node balanced binary tree with
// subtrees distributed over the processors, summed by a parallel recursion
// with a futurecall on the left child. The heuristic sees the classic
// two-recursive-call update (left/right at the default 70% affinity
// combine to 91%) and chooses migration for every dereference: the
// "M"-row behaviour of Table 2.
#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"

namespace olden::bench {
namespace {

struct TreeNode {
  std::int64_t val;
  GPtr<TreeNode> left;
  GPtr<TreeNode> right;
};

enum Site : SiteId {
  kVal,        // t->val in the kernel
  kLeft,       // t->left
  kRight,      // t->right
  kInitVal,    // builder stores
  kInitLeft,
  kInitRight,
  kNumSites
};

constexpr int kPaperDepth = 20;    // 1024K nodes
constexpr int kDefaultDepth = 18;  // 256K nodes: full table in seconds
constexpr int kTinyDepth = 12;     // 4K nodes: regression-harness size
constexpr Cycles kWorkPerNode = 120;

/// Node value: a layout-independent function of the node's position, so
/// the checksum actually exercises data movement (all-ones would hide
/// stale reads).
std::int64_t node_value(std::uint64_t pos) {
  return static_cast<std::int64_t>((pos * 2654435761ULL) & 0xffff);
}

/// Build a subtree of `depth` levels; this node and everything not handed
/// to the left child lives on processor `lo` of [lo, hi).
Task<GPtr<TreeNode>> build(Machine& m, int depth, std::uint64_t pos,
                           ProcId lo, ProcId hi) {
  auto n = m.alloc<TreeNode>(lo);
  // Initializing stores: overridden to migration, so the builder thread
  // follows the allocation and child subtrees build in parallel.
  co_await wr(n, &TreeNode::val, node_value(pos), kInitVal);
  GPtr<TreeNode> l;
  GPtr<TreeNode> r;
  if (depth > 1) {
    const auto [lr, rr] = split_procs(lo, hi);
    auto fl =
        co_await futurecall(build(m, depth - 1, pos * 2 + 1, lr.lo, lr.hi));
    r = co_await build(m, depth - 1, pos * 2 + 2, rr.lo, rr.hi);
    l = co_await touch(fl);
  }
  co_await wr(n, &TreeNode::left, l, kInitLeft);
  co_await wr(n, &TreeNode::right, r, kInitRight);
  co_return n;
}

Task<std::int64_t> tree_add(Machine& m, GPtr<TreeNode> t) {
  if (!t) co_return 0;
  const auto l = co_await rd(t, &TreeNode::left, kLeft);
  const auto r = co_await rd(t, &TreeNode::right, kRight);
  auto fl = co_await futurecall(tree_add(m, l));
  const std::int64_t rs = co_await tree_add(m, r);
  const std::int64_t v = co_await rd(t, &TreeNode::val, kVal);
  m.work(kWorkPerNode);
  const std::int64_t ls = co_await touch(fl);
  co_return ls + rs + v;
}

struct RootOut {
  std::int64_t sum = 0;
  Cycles build_end = 0;
};

Task<RootOut> root(Machine& m, int depth) {
  RootOut out;
  auto t = co_await build(m, depth, 0, 0, m.nprocs());
  out.build_end = m.now_max();
  out.sum = co_await tree_add(m, t);
  co_return out;
}

std::int64_t reference(int depth, std::uint64_t pos) {
  if (depth == 0) return 0;
  return node_value(pos) + reference(depth - 1, pos * 2 + 1) +
         reference(depth - 1, pos * 2 + 2);
}

class TreeAdd final : public Benchmark {
 public:
  std::string name() const override { return "TreeAdd"; }
  std::string description() const override {
    return "Adds the values in a tree";
  }
  std::string problem_size(bool paper) const override {
    return paper ? "1024K nodes" : "256K nodes";
  }
  bool whole_program_timing() const override { return false; }
  std::string heuristic_choice() const override { return "M"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    p.structs = {{"tree",
                  {{"left", std::nullopt}, {"right", std::nullopt}}}};
    Procedure ta;
    ta.name = "TreeAdd";
    ta.params = {"t"};
    ta.rec_loop_id = 0;
    If br;  // if (t == NULL) return 0; else ...
    Call cl;
    cl.callee = "TreeAdd";
    cl.args = {{"t", {{"tree", "left"}}}};
    cl.future = true;
    Call cr;
    cr.callee = "TreeAdd";
    cr.args = {{"t", {{"tree", "right"}}}};
    br.else_branch.push_back(deref("t", kLeft));
    br.else_branch.push_back(deref("t", kRight));
    br.else_branch.push_back(cl);
    br.else_branch.push_back(cr);
    br.else_branch.push_back(deref("t", kVal));
    ta.body.push_back(br);
    p.procs.push_back(std::move(ta));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    return {{kInitVal, Mechanism::kMigrate},
            {kInitLeft, Mechanism::kMigrate},
            {kInitRight, Mechanism::kMigrate}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    const int depth =
        cfg.tiny ? kTinyDepth : cfg.paper_size ? kPaperDepth : kDefaultDepth;
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    const RootOut out = run_program(m, root(m, depth));
    res.checksum = static_cast<std::uint64_t>(out.sum);
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    const int depth =
        cfg.tiny ? kTinyDepth : cfg.paper_size ? kPaperDepth : kDefaultDepth;
    return static_cast<std::uint64_t>(reference(depth, 0));
  }
};

}  // namespace

const Benchmark& treeadd_benchmark() {
  static const TreeAdd b;
  return b;
}

}  // namespace olden::bench
