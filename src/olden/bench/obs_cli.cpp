#include "olden/bench/obs_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace olden::bench {

namespace {

/// Matches "--NAME=value" exactly (so "--trace" never swallows
/// "--trace-bin"). Returns the value through `out`.
bool flag_value(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

void env_default(std::string* opt, const char* var) {
  if (!opt->empty()) return;
  const char* v = std::getenv(var);
  if (v != nullptr && v[0] != '\0') *opt = v;
}

/// Strict non-negative integer parse: every character must be a digit and
/// the value must fit in 64 bits. "abc", "-3", "1e6", "" all fail — a
/// malformed limit or seed should be a loud error, not a silent zero.
bool parse_u64_strict(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

[[noreturn]] void flag_error(const char* argv0, const char* what) {
  std::fprintf(stderr, "%s: %s\n", argv0 != nullptr ? argv0 : "olden-bench",
               what);
  std::exit(2);
}

}  // namespace

void ObsCli::parse(int* argc, char** argv,
                   std::initializer_list<const char*> passthrough) {
  std::string limit_str;
  std::string profile_interval_str;
  std::string faults_str;
  std::string fault_seed_str;
  std::string adapt_interval_str;
  std::string adapt_hysteresis_str;
  std::string sample_str;
  bool breakdown_env =
      std::getenv("OLDEN_BREAKDOWN") != nullptr;
  auto passes_through = [&](const char* arg) {
    if (std::strcmp(arg, "--help") == 0) return true;
    for (const char* prefix : passthrough) {
      if (std::strncmp(arg, prefix, std::strlen(prefix)) == 0) return true;
    }
    return false;
  };
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string v;
    if (flag_value(argv[i], "--trace", &v)) {
      trace_path_ = v;
    } else if (flag_value(argv[i], "--trace-bin", &v)) {
      trace_bin_path_ = v;
    } else if (flag_value(argv[i], "--trace-stream", &v)) {
      trace_stream_path_ = v;
    } else if (flag_value(argv[i], "--stats-json", &v)) {
      stats_path_ = v;
    } else if (flag_value(argv[i], "--profile", &v)) {
      profile_path_ = v;
    } else if (flag_value(argv[i], "--profile-interval", &v)) {
      profile_interval_str = v;
      if (profile_interval_str.empty()) {
        flag_error(argv[0],
                   "--profile-interval: empty value is not a positive integer");
      }
    } else if (flag_value(argv[i], "--trace-limit", &v)) {
      limit_str = v;
      if (limit_str.empty()) {
        flag_error(argv[0],
                   "--trace-limit: empty value is not a non-negative integer");
      }
    } else if (flag_value(argv[i], "--faults", &v)) {
      faults_str = v;
      if (faults_str.empty()) faults_str = "none";  // "--faults=" disables
    } else if (flag_value(argv[i], "--fault-seed", &v)) {
      fault_seed_str = v;
      if (fault_seed_str.empty()) {
        flag_error(argv[0],
                   "--fault-seed: empty value is not a non-negative integer");
      }
    } else if (flag_value(argv[i], "--adapt-interval", &v)) {
      adapt_interval_str = v;
      if (adapt_interval_str.empty()) {
        flag_error(argv[0],
                   "--adapt-interval: empty value is not a positive integer");
      }
    } else if (flag_value(argv[i], "--adapt-hysteresis", &v)) {
      adapt_hysteresis_str = v;
      if (adapt_hysteresis_str.empty()) {
        flag_error(argv[0],
                   "--adapt-hysteresis: empty value is not a positive integer");
      }
    } else if (flag_value(argv[i], "--sample", &v)) {
      sample_str = v;
      if (sample_str.empty()) {
        flag_error(argv[0], "--sample: empty value is not a W:D[:offset] "
                            "schedule");
      }
    } else if (std::strcmp(argv[i], "--breakdown") == 0) {
      breakdown_ = true;
    } else if (std::strcmp(argv[i], "--version") == 0) {
      std::printf(
          "%s: stats schema v%d, binary trace format v%d, profile schema "
          "v%d\n",
          argv[0] != nullptr ? argv[0] : "olden-bench",
          trace::kStatsSchemaVersion, trace::kBinaryTraceVersion,
          profile::kProfileSchemaVersion);
      std::exit(0);
    } else if (std::strncmp(argv[i], "--", 2) == 0 &&
               !passes_through(argv[i])) {
      std::fprintf(stderr,
                   "%s: unknown flag '%s'\n"
                   "observability flags:\n%s",
                   argv[0] != nullptr ? argv[0] : "olden-bench", argv[i],
                   usage());
      std::exit(2);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;

  env_default(&trace_path_, "OLDEN_TRACE");
  env_default(&trace_bin_path_, "OLDEN_TRACE_BIN");
  env_default(&trace_stream_path_, "OLDEN_TRACE_STREAM");
  env_default(&stats_path_, "OLDEN_STATS_JSON");
  env_default(&profile_path_, "OLDEN_PROFILE");
  env_default(&profile_interval_str, "OLDEN_PROFILE_INTERVAL");
  env_default(&limit_str, "OLDEN_TRACE_LIMIT");
  env_default(&faults_str, "OLDEN_FAULTS");
  env_default(&fault_seed_str, "OLDEN_FAULT_SEED");
  env_default(&adapt_interval_str, "OLDEN_ADAPT_INTERVAL");
  env_default(&adapt_hysteresis_str, "OLDEN_ADAPT_HYSTERESIS");
  env_default(&sample_str, "OLDEN_SAMPLE");
  if (!limit_str.empty()) {
    std::uint64_t limit = 0;
    if (!parse_u64_strict(limit_str, &limit)) {
      flag_error(argv[0], ("--trace-limit: '" + limit_str +
                           "' is not a non-negative integer")
                              .c_str());
    }
    obs_.set_event_limit(limit);
  }
  if (!fault_seed_str.empty() &&
      !parse_u64_strict(fault_seed_str, &fault_seed_)) {
    flag_error(argv[0], ("--fault-seed: '" + fault_seed_str +
                         "' is not a non-negative integer")
                            .c_str());
  }
  if (!adapt_interval_str.empty()) {
    if (!parse_u64_strict(adapt_interval_str, &adapt_interval_) ||
        adapt_interval_ == 0) {
      flag_error(argv[0], ("--adapt-interval: '" + adapt_interval_str +
                           "' is not a positive integer")
                              .c_str());
    }
    adapt_interval_set_ = true;
  }
  if (!adapt_hysteresis_str.empty()) {
    std::uint64_t h = 0;
    if (!parse_u64_strict(adapt_hysteresis_str, &h) || h == 0 ||
        h > 0xffffffffull) {
      flag_error(argv[0], ("--adapt-hysteresis: '" + adapt_hysteresis_str +
                           "' is not a positive integer")
                              .c_str());
    }
    adapt_hysteresis_ = static_cast<std::uint32_t>(h);
  }
  if (!faults_str.empty()) {
    std::string err;
    if (!fault::parse_fault_spec(faults_str, &fault_spec_, &err)) {
      // The parser's messages already carry a "faults: " prefix; strip it
      // so the flag name is not stuttered ("--faults: faults: ...").
      if (err.rfind("faults: ", 0) == 0) err = err.substr(8);
      flag_error(argv[0], ("--faults: " + err).c_str());
    }
  }
  if (!profile_interval_str.empty()) {
    std::uint64_t interval = 0;
    if (!parse_u64_strict(profile_interval_str, &interval) || interval == 0) {
      flag_error(argv[0], ("--profile-interval: '" + profile_interval_str +
                           "' is not a positive integer")
                              .c_str());
    }
    if (!profile_path_.empty()) obs_.enable_profile(interval);
  } else if (!profile_path_.empty()) {
    obs_.enable_profile();
  }
  breakdown_ = breakdown_ || breakdown_env;
  if (!sample_str.empty()) {
    sample::Spec spec;
    std::string err;
    if (!sample::parse_spec(sample_str, &spec, &err)) {
      flag_error(argv[0], ("--sample: " + err).c_str());
    }
    if (!trace_path_.empty() || !trace_bin_path_.empty() ||
        !trace_stream_path_.empty() || !profile_path_.empty()) {
      // Warming-phase events and cycles are never emitted, so any trace or
      // profile collected under sampling would have broken causal chains
      // and truncated timelines; refuse the combination instead.
      flag_error(argv[0],
                 "--sample cannot be combined with --trace/--trace-bin/"
                 "--trace-stream/--profile (functional warming suppresses "
                 "their per-event inputs)");
    }
    obs_.set_sample(spec);
  }
  if (!trace_stream_path_.empty() &&
      (!trace_path_.empty() || !trace_bin_path_.empty())) {
    // The streamed events are not retained in memory, so neither in-memory
    // export could include them; refuse the combination instead of writing
    // an empty file.
    flag_error(argv[0],
               "--trace-stream cannot be combined with --trace/--trace-bin "
               "(streamed events are not retained in memory)");
  }
  active_ = breakdown_ || !trace_path_.empty() || !trace_bin_path_.empty() ||
            !trace_stream_path_.empty() || !stats_path_.empty() ||
            !profile_path_.empty() || obs_.sample_enabled();
  obs_.set_trace_enabled(!trace_path_.empty() || !trace_bin_path_.empty() ||
                         !trace_stream_path_.empty());
  if (!trace_stream_path_.empty()) {
    sink_ = std::make_unique<trace::StreamingTraceSink>(trace_stream_path_);
    if (!sink_->ok()) {
      std::fprintf(stderr, "streaming trace export failed: %s\n",
                   sink_->error().c_str());
      std::exit(1);
    }
    obs_.set_sink(sink_.get());
  }
}

void ObsCli::begin_run(std::string label,
                       std::map<std::string, std::string> meta) {
  if (active_) obs_.begin_run(std::move(label), std::move(meta));
}

bool ObsCli::finish() {
  if (!active_) return true;
  if (breakdown_) {
    for (const trace::RunRecord& run : obs_.runs()) {
      std::fputs("\n", stdout);
      // Sampled runs have no per-processor breakdown; print the schedule
      // and estimate summary instead.
      std::fputs(run.sample.enabled
                     ? trace::sample_table(run).c_str()
                     : trace::breakdown_table(run).c_str(),
                 stdout);
    }
  }
  bool ok = true;
  std::string err;
  if (!trace_path_.empty()) {
    if (trace::write_chrome_trace(obs_, trace_path_, &err)) {
      std::printf("wrote trace: %s (%llu events retained)\n",
                  trace_path_.c_str(),
                  static_cast<unsigned long long>(obs_.events_retained()));
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
      ok = false;
    }
  }
  if (!trace_bin_path_.empty()) {
    if (trace::write_binary_trace(obs_, trace_bin_path_, &err)) {
      std::printf("wrote binary trace: %s\n", trace_bin_path_.c_str());
    } else {
      std::fprintf(stderr, "binary trace export failed: %s\n", err.c_str());
      ok = false;
    }
  }
  if (sink_ != nullptr) {
    std::string serr;
    if (sink_->finalize(&serr)) {
      std::printf("wrote streaming trace: %s (%llu events)\n",
                  trace_stream_path_.c_str(),
                  static_cast<unsigned long long>(sink_->events_written()));
    } else {
      std::fprintf(stderr, "streaming trace export failed: %s\n",
                   serr.c_str());
      ok = false;
    }
  }
  if (!stats_path_.empty()) {
    if (trace::write_stats_json(obs_, stats_path_, &err)) {
      std::printf("wrote stats: %s (%zu runs)\n", stats_path_.c_str(),
                  obs_.runs().size());
    } else {
      std::fprintf(stderr, "stats export failed: %s\n", err.c_str());
      ok = false;
    }
  }
  if (!profile_path_.empty()) {
    if (profile::write_profile_json(obs_, profile_path_, &err)) {
      std::printf("wrote profile: %s (%zu runs)\n", profile_path_.c_str(),
                  obs_.runs().size());
    } else {
      std::fprintf(stderr, "profile export failed: %s\n", err.c_str());
      ok = false;
    }
  }
  return ok;
}

const char* ObsCli::usage() {
  return "  --trace=FILE       write a Chrome trace_event JSON "
         "(Perfetto-loadable)\n"
         "  --trace-bin=FILE   write a compact binary event log\n"
         "  --trace-stream=FILE\n"
         "                     stream the binary event log to disk as events\n"
         "                     fire (bounded memory; excludes "
         "--trace/--trace-bin)\n"
         "  --stats-json=FILE  write the structured stats document\n"
         "  --profile=FILE     write the interval-sampled profile JSON\n"
         "                     (page/site heat; see docs/PROFILING.md)\n"
         "  --profile-interval=N\n"
         "                     profile sampling interval in virtual cycles\n"
         "                     (default 65536; must be positive)\n"
         "  --trace-limit=N    cap retained trace events (default 1000000)\n"
         "  --breakdown        print per-processor cycle breakdowns\n"
         "  --faults=SPEC      inject wire faults, e.g. "
         "drop=0.05,dup=0.02,delay=0.1:800\n"
         "                     classes=fill:invalidate:ts_check restricts "
         "the injector\n"
         "                     to those message classes ('none' disables; "
         "see\n"
         "                     src/olden/fault/fault_spec.hpp)\n"
         "  --fault-seed=N     fault-plane RNG seed (default 1)\n"
         "  --adapt-interval=N adaptive-scheme re-grading interval in "
         "virtual cycles\n"
         "                     (with --scheme=adaptive; must be positive)\n"
         "  --adapt-hysteresis=K\n"
         "                     consecutive flip votes required before a "
         "site flips\n"
         "                     (default 2; must be positive)\n"
         "  --sample=W:D[:offset]\n"
         "                     SMARTS-style sampled run: measure detail "
         "windows of D\n"
         "                     virtual cycles every W cycles, functional "
         "warming in\n"
         "                     between; stats carry per-counter estimates "
         "with 95%\n"
         "                     CIs (excludes --trace*/--profile; see "
         "docs/SAMPLING.md)\n"
         "  --version          print stats/trace schema versions and exit\n"
         "  (env: OLDEN_TRACE, OLDEN_TRACE_BIN, OLDEN_TRACE_STREAM, "
         "OLDEN_STATS_JSON, OLDEN_PROFILE, OLDEN_PROFILE_INTERVAL, "
         "OLDEN_TRACE_LIMIT, OLDEN_BREAKDOWN, OLDEN_FAULTS, "
         "OLDEN_FAULT_SEED, OLDEN_ADAPT_INTERVAL, OLDEN_ADAPT_HYSTERESIS, "
         "OLDEN_SAMPLE)\n";
}

}  // namespace olden::bench
