#include "olden/bench/obs_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace olden::bench {

namespace {

/// Matches "--NAME=value" exactly (so "--trace" never swallows
/// "--trace-bin"). Returns the value through `out`.
bool flag_value(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

void env_default(std::string* opt, const char* var) {
  if (!opt->empty()) return;
  const char* v = std::getenv(var);
  if (v != nullptr && v[0] != '\0') *opt = v;
}

}  // namespace

void ObsCli::parse(int* argc, char** argv,
                   std::initializer_list<const char*> passthrough) {
  std::string limit_str;
  bool breakdown_env =
      std::getenv("OLDEN_BREAKDOWN") != nullptr;
  auto passes_through = [&](const char* arg) {
    if (std::strcmp(arg, "--help") == 0) return true;
    for (const char* prefix : passthrough) {
      if (std::strncmp(arg, prefix, std::strlen(prefix)) == 0) return true;
    }
    return false;
  };
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string v;
    if (flag_value(argv[i], "--trace", &v)) {
      trace_path_ = v;
    } else if (flag_value(argv[i], "--trace-bin", &v)) {
      trace_bin_path_ = v;
    } else if (flag_value(argv[i], "--stats-json", &v)) {
      stats_path_ = v;
    } else if (flag_value(argv[i], "--trace-limit", &v)) {
      limit_str = v;
    } else if (std::strcmp(argv[i], "--breakdown") == 0) {
      breakdown_ = true;
    } else if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s: stats schema v%d, binary trace format v%d\n",
                  argv[0] != nullptr ? argv[0] : "olden-bench",
                  trace::kStatsSchemaVersion, trace::kBinaryTraceVersion);
      std::exit(0);
    } else if (std::strncmp(argv[i], "--", 2) == 0 &&
               !passes_through(argv[i])) {
      std::fprintf(stderr,
                   "%s: unknown flag '%s'\n"
                   "observability flags:\n%s",
                   argv[0] != nullptr ? argv[0] : "olden-bench", argv[i],
                   usage());
      std::exit(2);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;

  env_default(&trace_path_, "OLDEN_TRACE");
  env_default(&trace_bin_path_, "OLDEN_TRACE_BIN");
  env_default(&stats_path_, "OLDEN_STATS_JSON");
  env_default(&limit_str, "OLDEN_TRACE_LIMIT");
  if (!limit_str.empty()) {
    obs_.set_event_limit(std::strtoull(limit_str.c_str(), nullptr, 10));
  }
  breakdown_ = breakdown_ || breakdown_env;
  active_ = breakdown_ || !trace_path_.empty() || !trace_bin_path_.empty() ||
            !stats_path_.empty();
  obs_.set_trace_enabled(!trace_path_.empty() || !trace_bin_path_.empty());
}

void ObsCli::begin_run(std::string label,
                       std::map<std::string, std::string> meta) {
  if (active_) obs_.begin_run(std::move(label), std::move(meta));
}

bool ObsCli::finish() {
  if (!active_) return true;
  if (breakdown_) {
    for (const trace::RunRecord& run : obs_.runs()) {
      std::fputs("\n", stdout);
      std::fputs(trace::breakdown_table(run).c_str(), stdout);
    }
  }
  bool ok = true;
  std::string err;
  if (!trace_path_.empty()) {
    if (trace::write_chrome_trace(obs_, trace_path_, &err)) {
      std::printf("wrote trace: %s (%llu events retained)\n",
                  trace_path_.c_str(),
                  static_cast<unsigned long long>(obs_.events_retained()));
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
      ok = false;
    }
  }
  if (!trace_bin_path_.empty()) {
    if (trace::write_binary_trace(obs_, trace_bin_path_, &err)) {
      std::printf("wrote binary trace: %s\n", trace_bin_path_.c_str());
    } else {
      std::fprintf(stderr, "binary trace export failed: %s\n", err.c_str());
      ok = false;
    }
  }
  if (!stats_path_.empty()) {
    if (trace::write_stats_json(obs_, stats_path_, &err)) {
      std::printf("wrote stats: %s (%zu runs)\n", stats_path_.c_str(),
                  obs_.runs().size());
    } else {
      std::fprintf(stderr, "stats export failed: %s\n", err.c_str());
      ok = false;
    }
  }
  return ok;
}

const char* ObsCli::usage() {
  return "  --trace=FILE       write a Chrome trace_event JSON "
         "(Perfetto-loadable)\n"
         "  --trace-bin=FILE   write a compact binary event log\n"
         "  --stats-json=FILE  write the structured stats document\n"
         "  --trace-limit=N    cap retained trace events (default 1000000)\n"
         "  --breakdown        print per-processor cycle breakdowns\n"
         "  --version          print stats/trace schema versions and exit\n"
         "  (env: OLDEN_TRACE, OLDEN_TRACE_BIN, OLDEN_STATS_JSON, "
         "OLDEN_TRACE_LIMIT, OLDEN_BREAKDOWN)\n";
}

}  // namespace olden::bench
