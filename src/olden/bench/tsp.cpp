// TSP: an estimate of the best hamiltonian circuit (Table 1, [24]).
//
// Karp-style divide and conquer: cities live in a balanced binary space
// partition tree (median splits, alternating axes); small subtrees are
// toured trivially; the merge phase stitches two subtours (and the
// subtree root) into one cycle. Unlike TreeAdd/Power the merge is
// non-trivial: it walks sequentially through whole subtours, which costs
// a migration per participating processor — exactly why the paper reports
// 15.8x at 32 rather than TreeAdd's 23x, and why caching would *increase*
// communication ("a large amount of data is accessed on each processor
// during the subtree walk").
//
// TSP is one of the three benchmarks with explicit path-affinity hints:
// tree links and tour links are hinted high (subtrees are co-located), so
// every dereference migrates: the "M" row.
#include <algorithm>
#include <cmath>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"
#include "olden/support/rng.hpp"

namespace olden::bench {
namespace {

/// Merge walks are cheap pointer chases; the conquer's nearest-insertion
/// evaluations carry the real arithmetic — that balance (quadratic leaves,
/// linear merges) is what lets TSP reach the paper's ~16x despite its
/// sequential merges.
constexpr Cycles kWorkPerMergeStep = 12;
constexpr Cycles kWorkPerInsertEval = 40;
constexpr int kConquerLimit = 64;

struct City {
  double x, y;
  GPtr<City> left, right;  // space-partition tree
  GPtr<City> next, prev;   // tour cycle
};

enum Site : SiteId {
  kLeft,
  kRight,
  kCoord,    // x / y reads during merge walks
  kNext,     // tour walk
  kPrev,
  kLinkNext, // tour link writes
  kLinkPrev,
  kInit,
  kNumSites
};

/// Host-side input: points plus the balanced KD ordering. points[perm[m]]
/// is the root of [lo,hi), built by recursive median splits.
struct Input {
  struct Pt {
    double x, y;
  };
  std::vector<Pt> pts;
  std::vector<int> perm;

  Input(int n, std::uint64_t seed) {
    Rng rng(seed);
    pts.resize(static_cast<std::size_t>(n));
    for (auto& p : pts) {
      p.x = rng.next_double();
      p.y = rng.next_double();
    }
    perm.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    sort_range(0, n, /*axis=*/0);
  }

  void sort_range(int lo, int hi, int axis) {
    if (hi - lo <= 1) return;
    auto cmp = [&](int a, int b) {
      const Pt& pa = pts[static_cast<std::size_t>(a)];
      const Pt& pb = pts[static_cast<std::size_t>(b)];
      const double ka = axis == 0 ? pa.x : pa.y;
      const double kb = axis == 0 ? pb.x : pb.y;
      if (ka != kb) return ka < kb;
      return a < b;
    };
    const int mid = lo + (hi - lo) / 2;
    std::nth_element(perm.begin() + lo, perm.begin() + mid, perm.begin() + hi,
                     cmp);
    sort_range(lo, mid, 1 - axis);
    sort_range(mid + 1, hi, 1 - axis);
  }
};

double sq_dist(double ax, double ay, double bx, double by) {
  const double dx = ax - bx;
  const double dy = ay - by;
  return dx * dx + dy * dy;
}

double dist(double ax, double ay, double bx, double by) {
  return std::sqrt(sq_dist(ax, ay, bx, by));
}

/// Nearest-insertion tour over the given coordinates: the O(m^2) conquer
/// step that makes leaf regions the dominant (and perfectly parallel)
/// work, as in Karp's algorithm. Returns the visiting order.
std::vector<int> insertion_order(const std::vector<double>& xs,
                                 const std::vector<double>& ys,
                                 std::uint64_t* evals) {
  const int m = static_cast<int>(xs.size());
  std::vector<int> cycle;
  cycle.reserve(static_cast<std::size_t>(m));
  cycle.push_back(0);
  if (m > 1) cycle.push_back(1);
  for (int k = 2; k < m; ++k) {
    double best = 1e30;
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const int a = cycle[i];
      const int b = cycle[(i + 1) % cycle.size()];
      const double delta = dist(xs[a], ys[a], xs[k], ys[k]) +
                           dist(xs[k], ys[k], xs[b], ys[b]) -
                           dist(xs[a], ys[a], xs[b], ys[b]);
      if (evals != nullptr) ++*evals;
      if (delta < best) {
        best = delta;
        best_pos = i;
      }
    }
    cycle.insert(cycle.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1, k);
  }
  return cycle;
}

// ---------------------------------------------------------------------------
// Simulated implementation
// ---------------------------------------------------------------------------

Task<GPtr<City>> build(Machine& m, const Input& in, int lo, int hi, ProcId plo,
                       ProcId phi) {
  if (lo >= hi) co_return GPtr<City>{};
  const int mid = lo + (hi - lo) / 2;
  const auto& pt = in.pts[static_cast<std::size_t>(
      in.perm[static_cast<std::size_t>(mid)])];
  auto c = m.alloc<City>(plo);
  co_await wr(c, &City::x, pt.x, kInit);
  co_await wr(c, &City::y, pt.y, kInit);
  const auto [lr, rr] = split_procs(plo, phi);
  GPtr<City> l, r;
  if (mid > lo) {
    auto fl = co_await futurecall(build(m, in, lo, mid, lr.lo, lr.hi));
    r = co_await build(m, in, mid + 1, hi, rr.lo, rr.hi);
    l = co_await touch(fl);
  } else {
    r = co_await build(m, in, mid + 1, hi, rr.lo, rr.hi);
  }
  co_await wr(c, &City::left, l, kInit);
  co_await wr(c, &City::right, r, kInit);
  co_return c;
}

/// Collect a small subtree's cities (inorder) into `out`.
Task<int> gather(Machine& m, GPtr<City> t, std::vector<GPtr<City>>& out) {
  if (!t) co_return 0;
  const auto l = co_await rd(t, &City::left, kLeft);
  const auto r = co_await rd(t, &City::right, kRight);
  co_await gather(m, l, out);
  out.push_back(t);
  co_await gather(m, r, out);
  co_return 0;
}

Task<int> link(Machine& m, GPtr<City> a, GPtr<City> b) {
  co_await wr(a, &City::next, b, kLinkNext);
  co_await wr(b, &City::prev, a, kLinkPrev);
  (void)m;
  co_return 0;
}

/// Conquer: nearest-insertion tour of a <=kConquerLimit-city subtree —
/// O(m^2) local work once the thread has migrated to the subtree.
Task<GPtr<City>> conquer(Machine& m, GPtr<City> t) {
  std::vector<GPtr<City>> cs;
  co_await gather(m, t, cs);
  std::vector<double> xs(cs.size()), ys(cs.size());
  for (std::size_t i = 0; i < cs.size(); ++i) {
    xs[i] = co_await rd(cs[i], &City::x, kCoord);
    ys[i] = co_await rd(cs[i], &City::y, kCoord);
  }
  std::uint64_t evals = 0;
  const std::vector<int> cycle = insertion_order(xs, ys, &evals);
  m.work(evals * kWorkPerInsertEval);
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    co_await link(m, cs[static_cast<std::size_t>(cycle[i])],
                  cs[static_cast<std::size_t>(cycle[(i + 1) % cycle.size()])]);
    m.work(kWorkPerMergeStep);
  }
  co_return cs.front();
}

/// Walk tour `a` once and return the city nearest to (x, y).
Task<GPtr<City>> nearest_on_tour(Machine& m, GPtr<City> a, double x,
                                 double y) {
  GPtr<City> best = a;
  double best_d = 1e30;
  GPtr<City> p = a;
  do {
    const double px = co_await rd(p, &City::x, kCoord);
    const double py = co_await rd(p, &City::y, kCoord);
    const double d = sq_dist(px, py, x, y);
    if (d < best_d) {
      best_d = d;
      best = p;
    }
    m.work(kWorkPerMergeStep);
    p = co_await rd(p, &City::next, kNext);
  } while (p != a);
  co_return best;
}

/// Centroid of a tour (one sequential walk).
struct Centroid {
  double x = 0, y = 0;
};
Task<Centroid> centroid(Machine& m, GPtr<City> a) {
  Centroid c;
  int n = 0;
  GPtr<City> p = a;
  do {
    c.x += co_await rd(p, &City::x, kCoord);
    c.y += co_await rd(p, &City::y, kCoord);
    ++n;
    m.work(kWorkPerMergeStep / 2);
    p = co_await rd(p, &City::next, kNext);
  } while (p != a);
  c.x /= n;
  c.y /= n;
  co_return c;
}

/// Stitch tours A and B and splice city t in: find pa in A nearest to B's
/// centroid, pb in B nearest to pa, then rewire
///   pa -> t -> pb ... B-cycle ... -> succ_B(pb) continues as succ_A(pa).
Task<GPtr<City>> merge(Machine& m, GPtr<City> a, GPtr<City> b, GPtr<City> t) {
  const Centroid cb = co_await centroid(m, b);
  const GPtr<City> pa = co_await nearest_on_tour(m, a, cb.x, cb.y);
  const double pax = co_await rd(pa, &City::x, kCoord);
  const double pay = co_await rd(pa, &City::y, kCoord);
  const GPtr<City> pb = co_await nearest_on_tour(m, b, pax, pay);
  const GPtr<City> an = co_await rd(pa, &City::next, kNext);
  const GPtr<City> bn = co_await rd(pb, &City::next, kNext);
  co_await link(m, pa, t);
  co_await link(m, t, bn);
  co_await link(m, pb, an);
  co_return pa;
}

Task<GPtr<City>> tsp(Machine& m, GPtr<City> t, int sz) {
  if (sz <= kConquerLimit) co_return co_await conquer(m, t);
  const auto l = co_await rd(t, &City::left, kLeft);
  const auto r = co_await rd(t, &City::right, kRight);
  const int lsz = (sz - 1) / 2;
  const int rsz = sz - 1 - lsz;
  auto fl = co_await futurecall(tsp(m, l, lsz));
  const GPtr<City> rt = co_await tsp(m, r, rsz);
  const GPtr<City> lt = co_await touch(fl);
  co_return co_await merge(m, lt, rt, t);
}

Task<double> tour_length([[maybe_unused]] Machine& m, GPtr<City> a) {
  double len = 0;
  std::uint64_t n = 0;
  GPtr<City> p = a;
  do {
    const double px = co_await rd(p, &City::x, kCoord);
    const double py = co_await rd(p, &City::y, kCoord);
    const GPtr<City> q = co_await rd(p, &City::next, kNext);
    const double qx = co_await rd(q, &City::x, kCoord);
    const double qy = co_await rd(q, &City::y, kCoord);
    len += std::sqrt(sq_dist(px, py, qx, qy));
    ++n;
    p = q;
  } while (p != a);
  co_return len + static_cast<double>(n);  // n folded in: cycle must cover all
}

struct RootOut {
  double len = 0;
  Cycles build_end = 0;
};

Task<RootOut> root(Machine& m, const Input& in, int n) {
  RootOut out;
  auto t = co_await build(m, in, 0, n, 0, m.nprocs());
  out.build_end = m.now_max();
  auto tour = co_await tsp(m, t, n);
  out.len = co_await tour_length(m, tour);
  co_return out;
}

// ---------------------------------------------------------------------------
// Host reference: identical algorithm on plain structs.
// ---------------------------------------------------------------------------

struct RefCity {
  double x, y;
  int left = -1, right = -1, next = -1, prev = -1;
};

struct Ref {
  std::vector<RefCity> cs;

  int build(const Input& in, int lo, int hi) {
    if (lo >= hi) return -1;
    const int mid = lo + (hi - lo) / 2;
    const int idx = static_cast<int>(cs.size());
    cs.push_back({});
    const auto& pt = in.pts[static_cast<std::size_t>(
        in.perm[static_cast<std::size_t>(mid)])];
    cs[static_cast<std::size_t>(idx)].x = pt.x;
    cs[static_cast<std::size_t>(idx)].y = pt.y;
    // Allocation order must match the simulated build (future on the
    // left, right evaluated first in program order does not matter for
    // ids: the simulated build allocates this node, then left's subtree
    // via the futurecall body (which runs inline first), then right's).
    const int l = build(in, lo, mid);
    const int r = build(in, mid + 1, hi);
    cs[static_cast<std::size_t>(idx)].left = l;
    cs[static_cast<std::size_t>(idx)].right = r;
    return idx;
  }

  void gather(int t, std::vector<int>& out) {
    if (t < 0) return;
    gather(cs[static_cast<std::size_t>(t)].left, out);
    out.push_back(t);
    gather(cs[static_cast<std::size_t>(t)].right, out);
  }
  void link(int a, int b) {
    cs[static_cast<std::size_t>(a)].next = b;
    cs[static_cast<std::size_t>(b)].prev = a;
  }
  int conquer(int t) {
    std::vector<int> v;
    gather(t, v);
    std::vector<double> xs(v.size()), ys(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      xs[i] = cs[static_cast<std::size_t>(v[i])].x;
      ys[i] = cs[static_cast<std::size_t>(v[i])].y;
    }
    const std::vector<int> cycle = insertion_order(xs, ys, nullptr);
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      link(v[static_cast<std::size_t>(cycle[i])],
           v[static_cast<std::size_t>(cycle[(i + 1) % cycle.size()])]);
    }
    return v.front();
  }
  int nearest(int a, double x, double y) {
    int best = a;
    double bd = 1e30;
    int p = a;
    do {
      const double d =
          sq_dist(cs[static_cast<std::size_t>(p)].x,
                  cs[static_cast<std::size_t>(p)].y, x, y);
      if (d < bd) {
        bd = d;
        best = p;
      }
      p = cs[static_cast<std::size_t>(p)].next;
    } while (p != a);
    return best;
  }
  int merge(int a, int b, int t) {
    double cx = 0, cy = 0;
    int n = 0, p = b;
    do {
      cx += cs[static_cast<std::size_t>(p)].x;
      cy += cs[static_cast<std::size_t>(p)].y;
      ++n;
      p = cs[static_cast<std::size_t>(p)].next;
    } while (p != b);
    cx /= n;
    cy /= n;
    const int pa = nearest(a, cx, cy);
    const int pb = nearest(b, cs[static_cast<std::size_t>(pa)].x,
                           cs[static_cast<std::size_t>(pa)].y);
    const int an = cs[static_cast<std::size_t>(pa)].next;
    const int bn = cs[static_cast<std::size_t>(pb)].next;
    link(pa, t);
    link(t, bn);
    link(pb, an);
    return pa;
  }
  int tsp(int t, int sz) {
    if (sz <= kConquerLimit) return conquer(t);
    const int l = cs[static_cast<std::size_t>(t)].left;
    const int r = cs[static_cast<std::size_t>(t)].right;
    const int lsz = (sz - 1) / 2;
    const int lt = tsp(l, lsz);
    const int rt = tsp(r, sz - 1 - lsz);
    return merge(lt, rt, t);
  }
  double length(int a) {
    double len = 0;
    std::uint64_t n = 0;
    int p = a;
    do {
      const int q = cs[static_cast<std::size_t>(p)].next;
      len += std::sqrt(sq_dist(cs[static_cast<std::size_t>(p)].x,
                               cs[static_cast<std::size_t>(p)].y,
                               cs[static_cast<std::size_t>(q)].x,
                               cs[static_cast<std::size_t>(q)].y));
      ++n;
      p = q;
    } while (p != a);
    return len + static_cast<double>(n);
  }
};

int cities_for(const BenchConfig& cfg) {
  if (cfg.tiny) return 512;
  return cfg.paper_size ? 32768 : 16384;
}

class Tsp final : public Benchmark {
 public:
  std::string name() const override { return "TSP"; }
  std::string description() const override {
    return "Computes an estimate of the best hamiltonian circuit";
  }
  std::string problem_size(bool paper) const override {
    return paper ? "32K cities" : "16K cities";
  }
  bool whole_program_timing() const override { return false; }
  std::string heuristic_choice() const override { return "M"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    // Explicit hints (the paper names TSP among the three): subtrees and
    // subtours are co-located by construction.
    p.structs = {{"city",
                  {{"left", 0.95}, {"right", 0.95}, {"next", 0.95},
                   {"prev", 0.95}, {"x", std::nullopt}, {"y", std::nullopt}}}};

    Procedure walk;  // tour walks (centroid / nearest / length)
    walk.name = "tour_walk";
    walk.params = {"p"};
    While w;
    w.loop_id = 1;
    w.body.push_back(deref("p", kCoord));
    w.body.push_back(assign("p", "p", {{"city", "next"}}, SiteId{kNext}));
    walk.body.push_back(std::move(w));
    p.procs.push_back(std::move(walk));

    Procedure t;
    t.name = "tsp";
    t.params = {"t"};
    t.rec_loop_id = 0;
    If br;
    Call cl;
    cl.callee = "tsp";
    cl.args = {{"t", {{"city", "left"}}}};
    cl.future = true;
    Call cr;
    cr.callee = "tsp";
    cr.args = {{"t", {{"city", "right"}}}};
    br.else_branch.push_back(deref("t", kLeft));
    br.else_branch.push_back(deref("t", kRight));
    br.else_branch.push_back(cl);
    br.else_branch.push_back(cr);
    Call mw;
    mw.callee = "tour_walk";
    mw.args = {{"t", {{"city", "left"}}}};
    br.else_branch.push_back(mw);
    t.body.push_back(std::move(br));
    p.procs.push_back(std::move(t));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    // Tour link writes happen at merge boundaries; the thread is already
    // at the data (hinted-high affinity), treat as the compiler treats
    // initializing stores.
    return {{kInit, Mechanism::kMigrate},
            {kLinkNext, Mechanism::kMigrate},
            {kLinkPrev, Mechanism::kMigrate},
            {kPrev, Mechanism::kMigrate}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    const int n = cities_for(cfg);
    const Input in(n, cfg.seed);
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    const RootOut out = run_program(m, root(m, in, n));
    res.checksum = quantize(out.len, 1e6);
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    const int n = cities_for(cfg);
    const Input in(n, cfg.seed);
    Ref ref;
    const int t = ref.build(in, 0, n);
    const int tour = ref.tsp(t, n);
    return quantize(ref.length(tour), 1e6);
  }
};

}  // namespace

const Benchmark& tsp_benchmark() {
  static const Tsp b;
  return b;
}

}  // namespace olden::bench
