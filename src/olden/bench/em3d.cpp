// EM3D: electromagnetic wave propagation in a 3D object (Table 1).
//
// The object is a bipartite graph of E and H nodes. Each timestep computes
// new E values from a weighted sum of neighbouring H values, then new H
// values from the E values. Node lists are distributed blocked; edges
// cross processor boundaries with low locality.
//
// Heuristic behaviour (§5): the node-list walk is a parallelizable loop
// (each node's update is a futurecall), so its induction variable
// migrates — "migration for the nodes, because they have high locality".
// The neighbour-value reads dereference a different variable and cache —
// "software caching for the edges, because they have low locality". This
// reproduces the ghost-node-free structure the paper compares with Culler
// et al.'s Split-C implementation.
//
// The graph is generated independently of the machine size (edge locality
// is by index distance, not processor), so the checksum is identical for
// every processor count and coherence scheme.
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"
#include "olden/support/rng.hpp"

namespace olden::bench {
namespace {

constexpr int kDegree = 4;

struct GraphParams {
  int nodes_per_side = 1000;  // paper: 2K nodes total
  int steps = 100;
};

struct ENode {
  double value;
  std::int32_t degree;
  GPtr<ENode> next;                 // intra-kind list
  GPtr<GPtr<ENode>> neighbors;      // array[degree] of other-kind nodes
  GPtr<double> weights;             // array[degree]
};

/// A per-processor segment descriptor; the kernel's outer parallel loop
/// walks these.
struct Segment {
  GPtr<ENode> head;
  std::int32_t count;
  GPtr<Segment> next;
};

enum Site : SiteId {
  kNext,         // l = l->next (node walk: migrate)
  kNeighborPtr,  // l->neighbors[j] (migrate class: same var as walk)
  kWeight,       // l->weights[j]
  kValueRead,    // nb->value  (THE cached edge reads)
  kValueWrite,   // l->value = ...
  kDegreeFld,    // l->degree
  kSegHead,      // s->head
  kSegCount,     // s->count
  kSegNext,      // s = s->next
  kInit,         // builder stores
  kNumSites
};

constexpr Cycles kWorkPerNode = 100;
constexpr Cycles kWorkPerEdge = 70;

/// Host-side graph spec, shared by the simulated build and the reference
/// implementation so they construct the identical object.
struct GraphSpec {
  struct Node {
    double value;
    int neighbors[kDegree];   // indices into the other side
    double weights[kDegree];
  };
  std::vector<Node> e, h;

  GraphSpec(const GraphParams& gp, std::uint64_t seed) {
    Rng rng(seed);
    const int n = gp.nodes_per_side;
    auto make_side = [&](std::vector<Node>& side, double bias) {
      side.resize(n);
      for (int i = 0; i < n; ++i) {
        side[i].value = bias + 0.001 * static_cast<double>(i % 97);
        for (int j = 0; j < kDegree; ++j) {
          // 90% of edges stay within +/-4 indices (which a blocked layout
          // keeps mostly on-processor); 10% go anywhere. At 32 processors
          // this yields the paper's ~19% remote cacheable reads.
          int nb;
          if (rng.next_double() < 0.90) {
            nb = i + static_cast<int>(rng.next_below(9)) - 4;
            nb = ((nb % n) + n) % n;
          } else {
            nb = static_cast<int>(rng.next_below(n));
          }
          side[i].neighbors[j] = nb;
          // Small couplings keep the iteration bounded over 100 steps
          // (the checksum would overflow under an expanding map).
          side[i].weights[j] =
              (0.02 + 0.08 * rng.next_double()) / kDegree;
        }
      }
    };
    make_side(e, 1.0);
    make_side(h, -1.0);
  }
};

struct Built {
  GPtr<Segment> e_segs, h_segs;
};

/// Build one side's nodes (blocked), link them into per-processor lists,
/// then wire neighbour pointers across sides.
Task<Built> build(Machine& m, const GraphSpec& spec) {
  const int n = static_cast<int>(spec.e.size());
  std::vector<GPtr<ENode>> e_nodes(n), h_nodes(n);
  auto alloc_side = [&](const std::vector<GraphSpec::Node>& side,
                        std::vector<GPtr<ENode>>& out) -> Task<int> {
    for (int i = 0; i < n; ++i) {
      const ProcId owner = block_owner(i, n, m.nprocs());
      out[i] = m.alloc<ENode>(owner);
      co_await wr(out[i], &ENode::value, side[i].value, kInit);
      co_await wr(out[i], &ENode::degree, std::int32_t{kDegree}, kInit);
      co_await wr(out[i], &ENode::neighbors,
                  m.alloc_array<GPtr<ENode>>(owner, kDegree), kInit);
      co_await wr(out[i], &ENode::weights,
                  m.alloc_array<double>(owner, kDegree), kInit);
      if (i > 0) co_await wr(out[i - 1], &ENode::next, out[i], kInit);
    }
    co_return 0;
  };
  co_await alloc_side(spec.e, e_nodes);
  co_await alloc_side(spec.h, h_nodes);

  auto wire = [&](const std::vector<GraphSpec::Node>& side,
                  std::vector<GPtr<ENode>>& mine,
                  std::vector<GPtr<ENode>>& other) -> Task<int> {
    for (int i = 0; i < n; ++i) {
      const auto nbs = co_await rd(mine[i], &ENode::neighbors, kInit);
      const auto ws = co_await rd(mine[i], &ENode::weights, kInit);
      for (int j = 0; j < kDegree; ++j) {
        co_await wr_elem(nbs, j, other[side[i].neighbors[j]], kInit);
        co_await wr_elem(ws, j, side[i].weights[j], kInit);
      }
    }
    co_return 0;
  };
  co_await wire(spec.e, e_nodes, h_nodes);
  co_await wire(spec.h, h_nodes, e_nodes);

  // Segment descriptors: one per processor block, chained. They live on
  // processor 0 — they are the SPMD program's dispatch structure, and the
  // dispatcher must walk them *without* migrating so that futurecalled
  // segment bodies (which migrate to their data at the first node
  // dereference) leave a stealable continuation behind.
  auto make_segs = [&](std::vector<GPtr<ENode>>& nodes) -> Task<GPtr<Segment>> {
    GPtr<Segment> head, tail;
    int i = 0;
    while (i < n) {
      const ProcId owner = block_owner(i, n, m.nprocs());
      int j = i;
      while (j < n && block_owner(j, n, m.nprocs()) == owner) ++j;
      auto s = m.alloc<Segment>(0);
      co_await wr(s, &Segment::head, nodes[i], kInit);
      co_await wr(s, &Segment::count, static_cast<std::int32_t>(j - i), kInit);
      if (!head) {
        head = s;
      } else {
        co_await wr(tail, &Segment::next, s, kInit);
      }
      tail = s;
      i = j;
    }
    co_return head;
  };
  Built b;
  b.e_segs = co_await make_segs(e_nodes);
  b.h_segs = co_await make_segs(h_nodes);
  co_return b;
}

Task<int> compute_node(Machine& m, GPtr<ENode> l) {
  const auto nbs = co_await rd(l, &ENode::neighbors, kNeighborPtr);
  const auto ws = co_await rd(l, &ENode::weights, kWeight);
  const std::int32_t deg = co_await rd(l, &ENode::degree, kDegreeFld);
  double v = co_await rd(l, &ENode::value, kValueWrite);
  for (std::int32_t j = 0; j < deg; ++j) {
    const GPtr<ENode> nb = co_await rd_elem(nbs, j, kNeighborPtr);
    const double w = co_await rd_elem(ws, j, kWeight);
    const double nv = co_await rd(nb, &ENode::value, kValueRead);
    v -= w * nv;
    m.work(kWorkPerEdge);
  }
  co_await wr(l, &ENode::value, v, kValueWrite);
  m.work(kWorkPerNode);
  co_return 0;
}

Task<int> compute_segment(Machine& m, GPtr<Segment> seg) {
  const auto head = co_await rd(seg, &Segment::head, kSegHead);
  const auto count = co_await rd(seg, &Segment::count, kSegCount);
  GPtr<ENode> l = head;
  std::vector<Future<int>> fs;
  fs.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) {
    fs.push_back(co_await futurecall(compute_node(m, l)));
    if (i + 1 < count) l = co_await rd(l, &ENode::next, kNext);
  }
  for (auto& f : fs) co_await touch(f);
  co_return 0;
}

Task<int> compute_side(Machine& m, GPtr<Segment> segs) {
  std::vector<Future<int>> fs;
  GPtr<Segment> s = segs;
  while (s) {
    fs.push_back(co_await futurecall(compute_segment(m, s)));
    s = co_await rd(s, &Segment::next, kSegNext);
  }
  for (auto& f : fs) co_await touch(f);
  co_return 0;
}

Task<double> checksum_side([[maybe_unused]] Machine& m, GPtr<Segment> segs) {
  double acc = 0;
  GPtr<Segment> s = segs;
  while (s) {
    GPtr<ENode> l = co_await rd(s, &Segment::head, kSegHead);
    const auto count = co_await rd(s, &Segment::count, kSegCount);
    for (std::int32_t i = 0; i < count; ++i) {
      acc += co_await rd(l, &ENode::value, kValueRead);
      l = co_await rd(l, &ENode::next, kNext);
    }
    s = co_await rd(s, &Segment::next, kSegNext);
  }
  co_return acc;
}

struct RootOut {
  double sum = 0;
  Cycles build_end = 0;
};

Task<RootOut> root(Machine& m, const GraphSpec& spec, int steps) {
  RootOut out;
  const Built b = co_await build(m, spec);
  out.build_end = m.now_max();
  for (int t = 0; t < steps; ++t) {
    co_await compute_side(m, b.e_segs);  // E from H
    co_await compute_side(m, b.h_segs);  // H from E
  }
  out.sum = co_await checksum_side(m, b.e_segs) +
            co_await checksum_side(m, b.h_segs);
  co_return out;
}

GraphParams params_for(const BenchConfig& cfg) {
  GraphParams gp;
  if (cfg.tiny) {
    gp.nodes_per_side = 200;
    gp.steps = 10;
    return gp;
  }
  if (!cfg.paper_size) {
    gp.nodes_per_side = 1000;
    gp.steps = 100;
  }
  return gp;  // the paper size (2K nodes) is the default size
}

class Em3d final : public Benchmark {
 public:
  std::string name() const override { return "EM3D"; }
  std::string description() const override {
    return "Simulates the propagation of electro-magnetic waves in a 3D object";
  }
  std::string problem_size(bool) const override { return "2K nodes"; }
  bool whole_program_timing() const override { return false; }
  std::string heuristic_choice() const override { return "M+C"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    p.structs = {
        {"node", {{"next", std::nullopt}, {"neighbors", std::nullopt},
                  {"weights", std::nullopt}, {"value", std::nullopt},
                  {"degree", std::nullopt}}},
        {"segment", {{"next", std::nullopt}, {"head", std::nullopt},
                     {"count", std::nullopt}}},
    };

    // compute_node(l): reads l's arrays, caches neighbour values.
    Procedure cn;
    cn.name = "compute_node";
    cn.params = {"l"};
    While edges;
    edges.loop_id = 2;  // for j in 0..degree: no pointer induction var
    edges.body.push_back(assign("nb", "l", {{"node", "neighbors"}},
                                SiteId{kNeighborPtr}));
    edges.body.push_back(deref("l", kWeight));
    edges.body.push_back(deref("nb", kValueRead));
    cn.body.push_back(deref("l", kDegreeFld));
    cn.body.push_back(std::move(edges));
    cn.body.push_back(deref("l", kValueWrite));
    p.procs.push_back(std::move(cn));

    // compute_segment(l): parallelizable walk of the node list.
    Procedure cs;
    cs.name = "compute_segment";
    cs.params = {"seg"};
    cs.body.push_back(deref("seg", kSegHead));
    cs.body.push_back(deref("seg", kSegCount));
    cs.body.push_back(assign("l", "seg", {{"segment", "head"}}, kSegHead));
    While nodes;
    nodes.loop_id = 1;
    Call per_node;
    per_node.callee = "compute_node";
    per_node.args = {{"l", {}}};
    per_node.future = true;
    nodes.body.push_back(per_node);
    nodes.body.push_back(assign("l", "l", {{"node", "next"}}, SiteId{kNext}));
    cs.body.push_back(std::move(nodes));
    p.procs.push_back(std::move(cs));

    // compute_side(s): parallelizable walk of the segment list.
    Procedure side;
    side.name = "compute_side";
    side.params = {"s"};
    While segs;
    segs.loop_id = 0;
    Call per_seg;
    per_seg.callee = "compute_segment";
    per_seg.args = {{"s", {}}};
    per_seg.future = true;
    segs.body.push_back(per_seg);
    segs.body.push_back(
        assign("s", "s", {{"segment", "next"}}, SiteId{kSegNext}));
    side.body.push_back(std::move(segs));
    p.procs.push_back(std::move(side));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    return {{kInit, Mechanism::kMigrate}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    const GraphParams gp = params_for(cfg);
    const GraphSpec spec(gp, cfg.seed);
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    const RootOut out = run_program(m, root(m, spec, gp.steps));
    res.checksum = quantize(out.sum);
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    const GraphParams gp = params_for(cfg);
    GraphSpec spec(gp, cfg.seed);
    std::vector<double> ev(spec.e.size()), hv(spec.h.size());
    for (std::size_t i = 0; i < spec.e.size(); ++i) ev[i] = spec.e[i].value;
    for (std::size_t i = 0; i < spec.h.size(); ++i) hv[i] = spec.h[i].value;
    for (int t = 0; t < gp.steps; ++t) {
      for (std::size_t i = 0; i < ev.size(); ++i) {
        double v = ev[i];
        for (int j = 0; j < kDegree; ++j) {
          v -= spec.e[i].weights[j] * hv[spec.e[i].neighbors[j]];
        }
        ev[i] = v;
      }
      for (std::size_t i = 0; i < hv.size(); ++i) {
        double v = hv[i];
        for (int j = 0; j < kDegree; ++j) {
          v -= spec.h[i].weights[j] * ev[spec.h[i].neighbors[j]];
        }
        hv[i] = v;
      }
    }
    double acc = 0;
    for (double v : ev) acc += v;
    for (double v : hv) acc += v;
    return quantize(acc);
  }
};

}  // namespace

const Benchmark& em3d_benchmark() {
  static const Em3d b;
  return b;
}

}  // namespace olden::bench
