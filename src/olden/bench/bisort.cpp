// Bisort: bitonic sort over a binary tree of integers (Table 1, [8]).
//
// Values live at the leaves of a perfect binary tree whose subtrees are
// distributed blocked. The benchmark performs two full sorts (forward then
// backward, as in the original). A sort of a height-h subtree sorts its
// halves in opposite directions (futurecall on the left), then runs the
// bitonic merge: a lockstep descent comparing/swapping corresponding
// values of the two halves, followed by recursive merges of each half.
//
// Heuristic behaviour (§5): the merge descent uses a *pair* of pointers;
// both are induction variables of the lockstep recursion, but a control
// loop selects at most one variable for migration — the other's
// dereferences are cached. That is the paper's "pair of pointers is used
// to search the subtrees ... dereferences to these pointers use caching",
// while the value swaps (touching lots of data per processor) ride the
// migrating pointer. Swapping values rather than subtree pointers is
// expensive but preserves locality for the second sort, as §5 notes.
#include <algorithm>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"
#include "olden/support/rng.hpp"

namespace olden::bench {
namespace {

constexpr Cycles kWorkPerCompare = 35;

struct BNode {
  std::int64_t value;  // meaningful at leaves only
  GPtr<BNode> left, right;
};

enum Site : SiteId {
  kLeft,    // descent on the sorted/merged subtree root: migrate
  kRight,
  kPlChild,  // lockstep pointer 1 (selected: migrate)
  kPlVal,
  kPrChild,  // lockstep pointer 2 (cached)
  kPrVal,
  kInit,
  kNumSites
};

int leaves_for(const BenchConfig& cfg) {
  if (cfg.tiny) return 4096;
  return cfg.paper_size ? 131072 : 32768;
}

Task<GPtr<BNode>> build(Machine& m, const std::vector<std::int64_t>& vals,
                        int lo, int hi, ProcId plo, ProcId phi) {
  auto n = m.alloc<BNode>(plo);
  if (hi - lo == 1) {
    co_await wr(n, &BNode::value, vals[static_cast<std::size_t>(lo)], kInit);
    co_return n;
  }
  const int mid = lo + (hi - lo) / 2;
  const auto [lrange, rrange] = split_procs(plo, phi);
  auto fl =
      co_await futurecall(build(m, vals, lo, mid, lrange.lo, lrange.hi));
  auto r = co_await build(m, vals, mid, hi, rrange.lo, rrange.hi);
  auto l = co_await touch(fl);
  co_await wr(n, &BNode::left, l, kInit);
  co_await wr(n, &BNode::right, r, kInit);
  co_return n;
}

/// Compare-exchange corresponding leaves of the pl and pr subtrees so that
/// pl's leaves hold the min (dir=false) or max (dir=true) of each pair.
Task<int> lockstep(Machine& m, GPtr<BNode> pl, GPtr<BNode> pr, bool dir,
                   int height) {
  if (height == 0) {
    const auto a = co_await rd(pl, &BNode::value, kPlVal);
    const auto b = co_await rd(pr, &BNode::value, kPrVal);
    m.work(kWorkPerCompare);
    if ((a > b) != dir) {
      co_await wr(pl, &BNode::value, b, kPlVal);
      co_await wr(pr, &BNode::value, a, kPrVal);
    }
    co_return 0;
  }
  const auto pll = co_await rd(pl, &BNode::left, kPlChild);
  const auto plr = co_await rd(pl, &BNode::right, kPlChild);
  const auto prl = co_await rd(pr, &BNode::left, kPrChild);
  const auto prr = co_await rd(pr, &BNode::right, kPrChild);
  co_await lockstep(m, pll, prl, dir, height - 1);
  co_await lockstep(m, plr, prr, dir, height - 1);
  co_return 0;
}

/// Bitonic merge: leaves of `t` (height h) form a bitonic sequence; sort
/// them ascending (dir=false) or descending (dir=true).
Task<int> bimerge(Machine& m, GPtr<BNode> t, bool dir, int height) {
  if (height == 0) co_return 0;
  const auto l = co_await rd(t, &BNode::left, kLeft);
  const auto r = co_await rd(t, &BNode::right, kRight);
  co_await lockstep(m, l, r, dir, height - 1);
  auto fl = co_await futurecall(bimerge(m, l, dir, height - 1));
  co_await bimerge(m, r, dir, height - 1);
  co_await touch(fl);
  co_return 0;
}

Task<int> bisort(Machine& m, GPtr<BNode> t, bool dir, int height) {
  if (height == 0) co_return 0;
  const auto l = co_await rd(t, &BNode::left, kLeft);
  const auto r = co_await rd(t, &BNode::right, kRight);
  auto fl = co_await futurecall(bisort(m, l, dir, height - 1));
  co_await bisort(m, r, !dir, height - 1);
  co_await touch(fl);
  co_await bimerge(m, t, dir, height);
  co_return 0;
}

Task<std::uint64_t> fold_leaves(Machine& m, GPtr<BNode> t, int height) {
  if (height == 0) {
    co_return static_cast<std::uint64_t>(
        co_await rd(t, &BNode::value, kPlVal));
  }
  const auto l = co_await rd(t, &BNode::left, kLeft);
  const auto r = co_await rd(t, &BNode::right, kRight);
  const std::uint64_t a = co_await fold_leaves(m, l, height - 1);
  const std::uint64_t b = co_await fold_leaves(m, r, height - 1);
  co_return mix_checksum(a, b);
}

struct RootOut {
  std::uint64_t checksum = 0;
  Cycles build_end = 0;
};

Task<RootOut> root(Machine& m, const std::vector<std::int64_t>& vals,
                   int height) {
  RootOut out;
  auto t =
      co_await build(m, vals, 0, static_cast<int>(vals.size()), 0, m.nprocs());
  out.build_end = m.now_max();
  co_await bisort(m, t, /*dir=*/false, height);  // forward sort
  const std::uint64_t fwd = co_await fold_leaves(m, t, height);
  co_await bisort(m, t, /*dir=*/true, height);  // backward sort
  const std::uint64_t bwd = co_await fold_leaves(m, t, height);
  out.checksum = mix_checksum(fwd, bwd);
  co_return out;
}

std::vector<std::int64_t> make_values(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<std::int64_t>(rng.next_below(1u << 30));
  }
  return v;
}

class Bisort final : public Benchmark {
 public:
  std::string name() const override { return "Bisort"; }
  std::string description() const override {
    return "Sort by creating two disjoint bitonic sequences, then merging";
  }
  std::string problem_size(bool paper) const override {
    return paper ? "128K integers" : "32K integers";
  }
  bool whole_program_timing() const override { return false; }
  std::string heuristic_choice() const override { return "M+C"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    p.structs = {{"node",
                  {{"left", std::nullopt}, {"right", std::nullopt},
                   {"value", std::nullopt}}}};

    Procedure ls;
    ls.name = "lockstep";
    ls.params = {"pl", "pr"};
    ls.rec_loop_id = 1;
    If br;
    br.then_branch.push_back(deref("pl", kPlVal));
    br.then_branch.push_back(deref("pr", kPrVal));
    Call c1;
    c1.callee = "lockstep";
    c1.args = {{"pl", {{"node", "left"}}}, {"pr", {{"node", "left"}}}};
    Call c2;
    c2.callee = "lockstep";
    c2.args = {{"pl", {{"node", "right"}}}, {"pr", {{"node", "right"}}}};
    br.else_branch.push_back(deref("pl", kPlChild));
    br.else_branch.push_back(deref("pr", kPrChild));
    br.else_branch.push_back(c1);
    br.else_branch.push_back(c2);
    ls.body.push_back(std::move(br));
    p.procs.push_back(std::move(ls));

    Procedure bm;
    bm.name = "bimerge";
    bm.params = {"t"};
    bm.rec_loop_id = 0;
    If mbr;
    Call lsc;
    lsc.callee = "lockstep";
    lsc.args = {{"t", {{"node", "left"}}}, {"t", {{"node", "right"}}}};
    Call ml;
    ml.callee = "bimerge";
    ml.args = {{"t", {{"node", "left"}}}};
    ml.future = true;
    Call mr;
    mr.callee = "bimerge";
    mr.args = {{"t", {{"node", "right"}}}};
    mbr.else_branch.push_back(deref("t", kLeft));
    mbr.else_branch.push_back(deref("t", kRight));
    mbr.else_branch.push_back(lsc);
    mbr.else_branch.push_back(ml);
    mbr.else_branch.push_back(mr);
    bm.body.push_back(std::move(mbr));
    p.procs.push_back(std::move(bm));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    return {{kInit, Mechanism::kMigrate}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    const int n = leaves_for(cfg);
    int height = 0;
    while ((1 << height) < n) ++height;
    const auto vals = make_values(n, cfg.seed);
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    const RootOut out = run_program(m, root(m, vals, height));
    res.checksum = out.checksum;
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    auto vals = make_values(leaves_for(cfg), cfg.seed);
    std::sort(vals.begin(), vals.end());
    std::uint64_t fwd = 0;
    bool first = true;
    // fold_leaves mixes left-to-right pairwise: mix(mix(a,b), mix(c,d))...
    // Recompute that exact fold over the sorted (then reverse-sorted)
    // sequence.
    auto fold = [](const std::vector<std::int64_t>& v) {
      std::vector<std::uint64_t> layer(v.size());
      for (std::size_t i = 0; i < v.size(); ++i) {
        layer[i] = static_cast<std::uint64_t>(v[i]);
      }
      while (layer.size() > 1) {
        std::vector<std::uint64_t> up(layer.size() / 2);
        for (std::size_t i = 0; i < up.size(); ++i) {
          up[i] = mix_checksum(layer[2 * i], layer[2 * i + 1]);
        }
        layer = std::move(up);
      }
      return layer[0];
    };
    fwd = fold(vals);
    (void)first;
    std::reverse(vals.begin(), vals.end());
    const std::uint64_t bwd = fold(vals);
    return mix_checksum(fwd, bwd);
  }
};

}  // namespace

const Benchmark& bisort_benchmark() {
  static const Bisort b;
  return b;
}

}  // namespace olden::bench
