// Barnes-Hut: hierarchical N-body simulation (Table 1, [5]).
//
// Three phases per timestep, as in §5: (1) build the octree over the
// bodies — sequential, and an increasing fraction of the runtime as
// processors are added (the paper factors it out to quote 19x at 32);
// (2) compute accelerations by walking the tree per body with the opening
// criterion; (3) advance positions.
//
// Heuristic behaviour (§5): migration moves each body's computation to the
// processor that owns the body; the tree walk starts from the same root on
// every iteration of the parallel body loop, so the pass-2 bottleneck rule
// *forces caching for the tree even though it has high locality* — the
// paper's marquee example of the rule. Remote tree-cell reads are the
// dominant cacheable stream (Table 3's 55.6% remote reads).
#include <cmath>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"
#include "olden/support/rng.hpp"

namespace olden::bench {
namespace {

constexpr double kTheta = 0.7;
constexpr double kDt = 0.025;
constexpr double kEps2 = 1e-4;
constexpr Cycles kWorkPerInteraction = 250;
constexpr Cycles kWorkPerBody = 300;

struct Vec3 {
  double x, y, z;
};

struct Body {
  Vec3 pos, vel, acc;  // read/written as whole 24-byte objects
  double mass;
  GPtr<Body> next;
};

/// Geometry and centre-of-mass are grouped so tree walks move them as
/// single block transfers (one cache access each) instead of four scalars.
struct Cell {
  struct Geom {
    double cx, cy, cz, half;
  } g;
  struct Com {
    double mx, my, mz, mass;
  } com;
  std::int32_t leaf;  // 1 => holds exactly `body`
  GPtr<Body> body;
  GPtr<Cell> child[8];
};

struct Seg {
  GPtr<Body> head;
  std::int32_t count;
  GPtr<Seg> next;
};

enum Site : SiteId {
  kBodyFld,    // b-> fields in the per-body loops (migrate)
  kBodyBuild,  // body reads on the sequential build thread (cache: the
               // builder must not bounce to every body's processor)
  kBodyNext,   // b = b->next
  kCellFld,   // c-> fields during tree walks (cached: bottleneck rule)
  kCellKid,   // c->child[i]
  kCellWr,    // tree construction / summarize writes (cache write-through)
  kSegFld,
  kSegNext,
  kInit,
  kNumSites
};

int bodies_for(const BenchConfig& cfg) {
  if (cfg.tiny) return 512;
  return cfg.paper_size ? 8192 : 4096;
}
constexpr int kSteps = 2;

// --- shared spec ---------------------------------------------------------

struct Spec {
  struct B {
    double px, py, pz, vx, vy, vz, mass;
  };
  std::vector<B> bodies;

  Spec(int n, std::uint64_t seed) {
    Rng rng(seed);
    bodies.resize(static_cast<std::size_t>(n));
    for (auto& b : bodies) {
      // Uniform in the unit cube with small random velocities.
      b.px = rng.next_double();
      b.py = rng.next_double();
      b.pz = rng.next_double();
      b.vx = 0.1 * (rng.next_double() - 0.5);
      b.vy = 0.1 * (rng.next_double() - 0.5);
      b.vz = 0.1 * (rng.next_double() - 0.5);
      b.mass = 1.0 / n;
    }
  }
};

int octant_of(double x, double y, double z, double cx, double cy, double cz) {
  return (x >= cx ? 1 : 0) | (y >= cy ? 2 : 0) | (z >= cz ? 4 : 0);
}

// ---------------------------------------------------------------------------
// Simulated implementation
// ---------------------------------------------------------------------------

detail::ReadAwaiter<GPtr<Cell>> rd_kid(GPtr<Cell> c, int q, SiteId site) {
  static const Cell probe{};
  const auto off = static_cast<std::uint32_t>(
      reinterpret_cast<const char*>(&probe.child[q]) -
      reinterpret_cast<const char*>(&probe));
  return {c.addr().plus(off), site};
}

Task<int> wr_kid(GPtr<Cell> c, int q, GPtr<Cell> v, SiteId site) {
  static const Cell probe{};
  const auto off = static_cast<std::uint32_t>(
      reinterpret_cast<const char*>(&probe.child[q]) -
      reinterpret_cast<const char*>(&probe));
  co_await detail::WriteAwaiter<GPtr<Cell>>{c.addr().plus(off), site, v};
  co_return 0;
}

/// Cells are allocated round-robin so cache-fill traffic spreads. The
/// whole record is initialized with one block write.
struct CellAlloc {
  Machine& m;
  ProcId next = 0;
  Task<GPtr<Cell>> make(double cx, double cy, double cz, double half) {
    auto c = m.alloc<Cell>(next);
    next = static_cast<ProcId>((next + 1) % m.nprocs());
    Cell init{};
    init.g = Cell::Geom{cx, cy, cz, half};
    co_await wr_obj(c, init, kCellWr);
    co_return c;
  }
};

Task<int> insert(Machine& m, CellAlloc& ca, GPtr<Cell> c, GPtr<Body> b,
                 double bx, double by, double bz) {
  const auto leaf = co_await rd(c, &Cell::leaf, kCellFld);
  const auto [cx, cy, cz, half] = co_await rd(c, &Cell::g, kCellFld);
  if (leaf) {
    // Split: push the resident body down, then insert b.
    const auto old = co_await rd(c, &Cell::body, kCellFld);
    co_await wr(c, &Cell::leaf, std::int32_t{0}, kCellWr);
    co_await wr(c, &Cell::body, GPtr<Body>{}, kCellWr);
    const Vec3 op = co_await rd(old, &Body::pos, kBodyBuild);
    const double ox = op.x, oy = op.y, oz = op.z;
    const int oq = octant_of(ox, oy, oz, cx, cy, cz);
    const double q2 = half / 2;
    auto oc = co_await ca.make(cx + (oq & 1 ? q2 : -q2),
                               cy + (oq & 2 ? q2 : -q2),
                               cz + (oq & 4 ? q2 : -q2), q2);
    co_await wr(oc, &Cell::leaf, std::int32_t{1}, kCellWr);
    co_await wr(oc, &Cell::body, old, kCellWr);
    co_await wr_kid(c, oq, oc, kCellWr);
  }
  const int q = octant_of(bx, by, bz, cx, cy, cz);
  const auto kid = co_await rd_kid(c, q, kCellKid);
  if (!kid) {
    const double q2 = half / 2;
    auto nc = co_await ca.make(cx + (q & 1 ? q2 : -q2),
                               cy + (q & 2 ? q2 : -q2),
                               cz + (q & 4 ? q2 : -q2), q2);
    co_await wr(nc, &Cell::leaf, std::int32_t{1}, kCellWr);
    co_await wr(nc, &Cell::body, b, kCellWr);
    co_await wr_kid(c, q, nc, kCellWr);
    co_return 0;
  }
  const auto kid_leaf = co_await rd(kid, &Cell::leaf, kCellFld);
  if (kid_leaf) {
    co_await insert(m, ca, kid, b, bx, by, bz);
  } else {
    co_await insert(m, ca, kid, b, bx, by, bz);
  }
  co_return 0;
}

struct Summary {
  double mx = 0, my = 0, mz = 0, mass = 0;
};

Task<Summary> summarize(Machine& m, GPtr<Cell> c) {
  Summary s;
  if (!c) co_return s;
  const auto leaf = co_await rd(c, &Cell::leaf, kCellFld);
  if (leaf) {
    const auto b = co_await rd(c, &Cell::body, kCellFld);
    const double mass = co_await rd(b, &Body::mass, kBodyBuild);
    const Vec3 bp = co_await rd(b, &Body::pos, kBodyBuild);
    s.mx = mass * bp.x;
    s.my = mass * bp.y;
    s.mz = mass * bp.z;
    s.mass = mass;
  } else {
    for (int q = 0; q < 8; ++q) {
      const auto kid = co_await rd_kid(c, q, kCellKid);
      if (!kid) continue;
      const Summary ks = co_await summarize(m, kid);
      s.mx += ks.mx;
      s.my += ks.my;
      s.mz += ks.mz;
      s.mass += ks.mass;
    }
  }
  Cell::Com com{};
  com.mx = s.mass > 0 ? s.mx / s.mass : 0.0;
  com.my = s.mass > 0 ? s.my / s.mass : 0.0;
  com.mz = s.mass > 0 ? s.mz / s.mass : 0.0;
  com.mass = s.mass;
  co_await wr(c, &Cell::com, com, kCellWr);
  co_return s;
}

struct Accel {
  double x = 0, y = 0, z = 0;
};

Task<Accel> walk(Machine& m, GPtr<Cell> c, GPtr<Body> self, double bx,
                 double by, double bz) {
  Accel a;
  if (!c) co_return a;
  const auto leaf = co_await rd(c, &Cell::leaf, kCellFld);
  if (leaf) {
    const auto ob = co_await rd(c, &Cell::body, kCellFld);
    if (ob == self) co_return a;
    const auto [mx, my, mz, mass] = co_await rd(c, &Cell::com, kCellFld);
    const double dx = mx - bx, dy = my - by, dz = mz - bz;
    const double d2 = dx * dx + dy * dy + dz * dz + kEps2;
    const double inv = 1.0 / (d2 * std::sqrt(d2));
    a.x = mass * dx * inv;
    a.y = mass * dy * inv;
    a.z = mass * dz * inv;
    m.work(kWorkPerInteraction);
    co_return a;
  }
  const double half = (co_await rd(c, &Cell::g, kCellFld)).half;
  const auto [mx, my, mz, mass] = co_await rd(c, &Cell::com, kCellFld);
  const double dx = mx - bx, dy = my - by, dz = mz - bz;
  const double d2 = dx * dx + dy * dy + dz * dz + kEps2;
  if ((2 * half) * (2 * half) < kTheta * kTheta * d2) {
    const double inv = 1.0 / (d2 * std::sqrt(d2));
    a.x = mass * dx * inv;
    a.y = mass * dy * inv;
    a.z = mass * dz * inv;
    m.work(kWorkPerInteraction);
    co_return a;
  }
  for (int q = 0; q < 8; ++q) {
    const auto kid = co_await rd_kid(c, q, kCellKid);
    if (!kid) continue;
    const Accel ka = co_await walk(m, kid, self, bx, by, bz);
    a.x += ka.x;
    a.y += ka.y;
    a.z += ka.z;
  }
  co_return a;
}

Task<int> force_body(Machine& m, GPtr<Body> b, GPtr<Cell> root) {
  const Vec3 p = co_await rd(b, &Body::pos, kBodyFld);
  const Accel a = co_await walk(m, root, b, p.x, p.y, p.z);
  co_await wr(b, &Body::acc, Vec3{a.x, a.y, a.z}, kBodyFld);
  m.work(kWorkPerBody);
  co_return 0;
}

Task<int> force_block(Machine& m, GPtr<Seg> seg, GPtr<Cell> root) {
  GPtr<Body> b = co_await rd(seg, &Seg::head, kSegFld);
  const auto count = co_await rd(seg, &Seg::count, kSegFld);
  std::vector<Future<int>> fs;
  for (std::int32_t i = 0; i < count; ++i) {
    fs.push_back(co_await futurecall(force_body(m, b, root)));
    if (i + 1 < count) b = co_await rd(b, &Body::next, kBodyNext);
  }
  for (auto& f : fs) co_await touch(f);
  co_return 0;
}

Task<int> advance_block(Machine& m, GPtr<Seg> seg) {
  GPtr<Body> b = co_await rd(seg, &Seg::head, kSegFld);
  const auto count = co_await rd(seg, &Seg::count, kSegFld);
  for (std::int32_t i = 0; i < count; ++i) {
    Vec3 pos = co_await rd(b, &Body::pos, kBodyFld);
    Vec3 vel = co_await rd(b, &Body::vel, kBodyFld);
    const Vec3 acc = co_await rd(b, &Body::acc, kBodyFld);
    vel.x += kDt * acc.x;
    pos.x += kDt * vel.x;
    vel.y += kDt * acc.y;
    pos.y += kDt * vel.y;
    vel.z += kDt * acc.z;
    pos.z += kDt * vel.z;
    co_await wr(b, &Body::vel, vel, kBodyFld);
    co_await wr(b, &Body::pos, pos, kBodyFld);
    m.work(kWorkPerBody / 2);
    if (i + 1 < count) b = co_await rd(b, &Body::next, kBodyNext);
  }
  co_return 0;
}

struct RootOut {
  double sum = 0;
  Cycles build_end = 0;
};

Task<RootOut> root_task(Machine& m, const Spec& spec) {
  RootOut out;
  const int n = static_cast<int>(spec.bodies.size());
  std::vector<GPtr<Body>> bodies(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const ProcId owner = block_owner(static_cast<std::uint64_t>(i),
                                     static_cast<std::uint64_t>(n), m.nprocs());
    const auto& sb = spec.bodies[static_cast<std::size_t>(i)];
    auto b = m.alloc<Body>(owner);
    co_await wr(b, &Body::pos, Vec3{sb.px, sb.py, sb.pz}, kInit);
    co_await wr(b, &Body::vel, Vec3{sb.vx, sb.vy, sb.vz}, kInit);
    co_await wr(b, &Body::mass, sb.mass, kInit);
    bodies[static_cast<std::size_t>(i)] = b;
    if (i > 0) {
      co_await wr(bodies[static_cast<std::size_t>(i - 1)], &Body::next, b,
                  kInit);
    }
  }
  // Dispatch segments (on processor 0, like EM3D).
  GPtr<Seg> segs, tail;
  {
    int i = 0;
    while (i < n) {
      const ProcId owner = block_owner(static_cast<std::uint64_t>(i),
                                       static_cast<std::uint64_t>(n),
                                       m.nprocs());
      int j = i;
      while (j < n && block_owner(static_cast<std::uint64_t>(j),
                                  static_cast<std::uint64_t>(n),
                                  m.nprocs()) == owner) {
        ++j;
      }
      auto s = m.alloc<Seg>(0);
      co_await wr(s, &Seg::head, bodies[static_cast<std::size_t>(i)], kInit);
      co_await wr(s, &Seg::count, static_cast<std::int32_t>(j - i), kInit);
      if (tail) {
        co_await wr(tail, &Seg::next, s, kInit);
      } else {
        segs = s;
      }
      tail = s;
      i = j;
    }
  }
  out.build_end = m.now_max();

  for (int step = 0; step < kSteps; ++step) {
    // Phase 1: sequential tree build (§5: "the tree building phase is
    // sequential and starts to represent a substantial fraction...").
    CellAlloc ca{m};
    auto root = co_await ca.make(0.5, 0.5, 0.5, 2.0);
    for (int i = 0; i < n; ++i) {
      const auto b = bodies[static_cast<std::size_t>(i)];
      const Vec3 bp = co_await rd(b, &Body::pos, kBodyBuild);
      co_await insert(m, ca, root, b, bp.x, bp.y, bp.z);
    }
    co_await summarize(m, root);

    // Phase 2: forces, parallel over body blocks.
    {
      std::vector<Future<int>> fs;
      GPtr<Seg> s = segs;
      while (s) {
        fs.push_back(co_await futurecall(force_block(m, s, root)));
        s = co_await rd(s, &Seg::next, kSegNext);
      }
      for (auto& f : fs) co_await touch(f);
    }
    // Phase 3: advance positions.
    {
      std::vector<Future<int>> fs;
      GPtr<Seg> s = segs;
      while (s) {
        fs.push_back(co_await futurecall(advance_block(m, s)));
        s = co_await rd(s, &Seg::next, kSegNext);
      }
      for (auto& f : fs) co_await touch(f);
    }
  }

  double sum = 0;
  for (const auto& b : bodies) {
    const Vec3 bp = co_await rd(b, &Body::pos, kBodyBuild);
    sum += bp.x + bp.y + bp.z;
  }
  out.sum = sum;
  co_return out;
}

// ---------------------------------------------------------------------------
// Host reference: identical algorithm, identical arithmetic order.
// ---------------------------------------------------------------------------

struct RefCell {
  double cx, cy, cz, half;
  double mx = 0, my = 0, mz = 0, mass = 0;
  bool leaf = false;
  int body = -1;
  int child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
};

struct Ref {
  std::vector<Spec::B> bodies;
  std::vector<double> ax, ay, az;
  std::vector<RefCell> cells;

  int make_cell(double cx, double cy, double cz, double half) {
    cells.push_back(RefCell{cx, cy, cz, half, 0, 0, 0, 0, false, -1,
                            {-1, -1, -1, -1, -1, -1, -1, -1}});
    return static_cast<int>(cells.size()) - 1;
  }

  void insert(int ci, int bi) {
    RefCell& c0 = cells[static_cast<std::size_t>(ci)];
    const double cx = c0.cx, cy = c0.cy, cz = c0.cz, half = c0.half;
    if (c0.leaf) {
      const int old = c0.body;
      cells[static_cast<std::size_t>(ci)].leaf = false;
      cells[static_cast<std::size_t>(ci)].body = -1;
      const auto& ob = bodies[static_cast<std::size_t>(old)];
      const int oq = octant_of(ob.px, ob.py, ob.pz, cx, cy, cz);
      const double q2 = half / 2;
      const int oc = make_cell(cx + (oq & 1 ? q2 : -q2),
                               cy + (oq & 2 ? q2 : -q2),
                               cz + (oq & 4 ? q2 : -q2), q2);
      cells[static_cast<std::size_t>(oc)].leaf = true;
      cells[static_cast<std::size_t>(oc)].body = old;
      cells[static_cast<std::size_t>(ci)].child[oq] = oc;
    }
    const auto& b = bodies[static_cast<std::size_t>(bi)];
    const int q = octant_of(b.px, b.py, b.pz, cx, cy, cz);
    const int kid = cells[static_cast<std::size_t>(ci)].child[q];
    if (kid < 0) {
      const double q2 = half / 2;
      const int nc = make_cell(cx + (q & 1 ? q2 : -q2),
                               cy + (q & 2 ? q2 : -q2),
                               cz + (q & 4 ? q2 : -q2), q2);
      cells[static_cast<std::size_t>(nc)].leaf = true;
      cells[static_cast<std::size_t>(nc)].body = bi;
      cells[static_cast<std::size_t>(ci)].child[q] = nc;
      return;
    }
    insert(kid, bi);
  }

  struct S {
    double mx = 0, my = 0, mz = 0, mass = 0;
  };
  S summarize(int ci) {
    S s;
    RefCell& c = cells[static_cast<std::size_t>(ci)];
    if (c.leaf) {
      const auto& b = bodies[static_cast<std::size_t>(c.body)];
      s.mx = b.mass * b.px;
      s.my = b.mass * b.py;
      s.mz = b.mass * b.pz;
      s.mass = b.mass;
    } else {
      for (int q = 0; q < 8; ++q) {
        if (c.child[q] < 0) continue;
        const S ks = summarize(c.child[q]);
        s.mx += ks.mx;
        s.my += ks.my;
        s.mz += ks.mz;
        s.mass += ks.mass;
      }
    }
    c.mass = s.mass;
    c.mx = s.mass > 0 ? s.mx / s.mass : 0.0;
    c.my = s.mass > 0 ? s.my / s.mass : 0.0;
    c.mz = s.mass > 0 ? s.mz / s.mass : 0.0;
    return s;
  }

  void walk(int ci, int self, double bx, double by, double bz, double* outx,
            double* outy, double* outz) {
    if (ci < 0) return;
    const RefCell& c = cells[static_cast<std::size_t>(ci)];
    if (c.leaf) {
      if (c.body == self) return;
      const double dx = c.mx - bx, dy = c.my - by, dz = c.mz - bz;
      const double d2 = dx * dx + dy * dy + dz * dz + kEps2;
      const double inv = 1.0 / (d2 * std::sqrt(d2));
      *outx += c.mass * dx * inv;
      *outy += c.mass * dy * inv;
      *outz += c.mass * dz * inv;
      return;
    }
    const double dx = c.mx - bx, dy = c.my - by, dz = c.mz - bz;
    const double d2 = dx * dx + dy * dy + dz * dz + kEps2;
    if ((2 * c.half) * (2 * c.half) < kTheta * kTheta * d2) {
      const double inv = 1.0 / (d2 * std::sqrt(d2));
      *outx += c.mass * dx * inv;
      *outy += c.mass * dy * inv;
      *outz += c.mass * dz * inv;
      return;
    }
    double sx = 0, sy = 0, sz = 0;
    for (int q = 0; q < 8; ++q) {
      walk(c.child[q], self, bx, by, bz, &sx, &sy, &sz);
    }
    *outx += sx;
    *outy += sy;
    *outz += sz;
  }

  double run(int steps) {
    const int n = static_cast<int>(bodies.size());
    ax.assign(static_cast<std::size_t>(n), 0);
    ay.assign(static_cast<std::size_t>(n), 0);
    az.assign(static_cast<std::size_t>(n), 0);
    for (int step = 0; step < steps; ++step) {
      cells.clear();
      const int root = make_cell(0.5, 0.5, 0.5, 2.0);
      for (int i = 0; i < n; ++i) insert(root, i);
      summarize(root);
      for (int i = 0; i < n; ++i) {
        double x = 0, y = 0, z = 0;
        const auto& b = bodies[static_cast<std::size_t>(i)];
        walk(root, i, b.px, b.py, b.pz, &x, &y, &z);
        ax[static_cast<std::size_t>(i)] = x;
        ay[static_cast<std::size_t>(i)] = y;
        az[static_cast<std::size_t>(i)] = z;
      }
      for (int i = 0; i < n; ++i) {
        auto& b = bodies[static_cast<std::size_t>(i)];
        b.vx += kDt * ax[static_cast<std::size_t>(i)];
        b.px += kDt * b.vx;
        b.vy += kDt * ay[static_cast<std::size_t>(i)];
        b.py += kDt * b.vy;
        b.vz += kDt * az[static_cast<std::size_t>(i)];
        b.pz += kDt * b.vz;
      }
    }
    double sum = 0;
    for (const auto& b : bodies) sum += b.px + b.py + b.pz;
    return sum;
  }
};

class Barnes final : public Benchmark {
 public:
  std::string name() const override { return "Barnes-Hut"; }
  std::string description() const override {
    return "Solves the N-body problem using hierarchical methods";
  }
  std::string problem_size(bool paper) const override {
    return paper ? "8K bodies" : "2K bodies";
  }
  bool whole_program_timing() const override { return true; }
  std::string heuristic_choice() const override { return "M+C"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    p.structs = {
        {"body", {{"next", std::nullopt}}},
        {"cell", {{"child", std::nullopt}}},
        {"seg", {{"next", std::nullopt}, {"head", std::nullopt}}},
    };

    // The tree walk: eight recursive calls through cell->child — a 99.99%
    // combine that pass 1 would migrate...
    Procedure w;
    w.name = "walk";
    w.params = {"c"};
    w.rec_loop_id = 1;
    If wb;
    for (int q = 0; q < 8; ++q) {
      Call cc;
      cc.callee = "walk";
      cc.args = {{"c", {{"cell", "child"}}}};
      wb.else_branch.push_back(cc);
    }
    wb.else_branch.push_back(deref("c", kCellFld));
    wb.else_branch.push_back(deref("c", kCellKid));
    w.body.push_back(std::move(wb));
    p.procs.push_back(std::move(w));

    // ...but the per-body parallel loop passes the *same* tree root every
    // iteration (root is not updated in the loop), so pass 2 forces
    // caching for the walk — the paper's bottleneck example.
    Procedure fb;
    fb.name = "force_block";
    fb.params = {"seg", "root"};
    fb.body.push_back(deref("seg", kSegFld));
    fb.body.push_back(assign("b", "seg", {{"seg", "head"}}, SiteId{kSegFld}));
    While bodies;
    bodies.loop_id = 0;
    Call fbc;
    fbc.callee = "walk";
    fbc.args = {{"root", {}}};
    fbc.future = true;
    bodies.body.push_back(deref("b", kBodyFld));
    bodies.body.push_back(fbc);
    bodies.body.push_back(
        assign("b", "b", {{"body", "next"}}, SiteId{kBodyNext}));
    fb.body.push_back(std::move(bodies));
    p.procs.push_back(std::move(fb));

    Procedure disp;
    disp.name = "main";
    disp.params = {"s"};
    While segs;
    segs.loop_id = 2;
    Call pseg;
    pseg.callee = "force_block";
    pseg.args = {{"s", {}}, {"root", {}}};
    pseg.future = true;
    segs.body.push_back(pseg);
    segs.body.push_back(assign("s", "s", {{"seg", "next"}}, SiteId{kSegNext}));
    disp.body.push_back(std::move(segs));
    p.procs.push_back(std::move(disp));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    // Tree-construction and summarize writes run on the sequential
    // builder thread; they go through the cache (write-through) so the
    // builder does not bounce between the cells' round-robin homes.
    return {{kInit, Mechanism::kMigrate}, {kCellWr, Mechanism::kCache}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    const Spec spec(bodies_for(cfg), cfg.seed);
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    const RootOut out = run_program(m, root_task(m, spec));
    res.checksum = quantize(out.sum, 1e7);
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    Ref ref;
    ref.bodies = Spec(bodies_for(cfg), cfg.seed).bodies;
    return quantize(ref.run(kSteps), 1e7);
  }
};

}  // namespace

const Benchmark& barnes_benchmark() {
  static const Barnes b;
  return b;
}

}  // namespace olden::bench
