#include "olden/bench/benchmark.hpp"

namespace olden::bench {

const std::vector<const Benchmark*>& suite() {
  static const std::vector<const Benchmark*> all = {
      &treeadd_benchmark(), &power_benchmark(),     &tsp_benchmark(),
      &mst_benchmark(),     &bisort_benchmark(),    &voronoi_benchmark(),
      &em3d_benchmark(),    &barnes_benchmark(),    &perimeter_benchmark(),
      &health_benchmark(),
  };
  return all;
}

const Benchmark* find_benchmark(const std::string& name) {
  for (const Benchmark* b : suite()) {
    if (b->name() == name) return b;
  }
  return nullptr;
}

}  // namespace olden::bench
