// The uniform observability command-line surface every bench binary
// shares:
//
//   --trace=FILE         Chrome trace_event JSON (Perfetto / chrome://tracing)
//   --trace-bin=FILE     compact binary event log ("OLDNTRC2"), in memory
//   --trace-stream=FILE  same binary log, streamed to disk as events fire
//                        (paper-scale runs; excludes --trace/--trace-bin)
//   --stats-json=FILE    structured stats document (schema_version'd)
//   --profile=FILE       interval-sampled profile JSON (see docs/PROFILING.md)
//   --profile-interval=N sampling interval in virtual cycles (default 65536)
//   --trace-limit=N      cap on retained trace events (default 1000000)
//   --breakdown          print per-processor cycle-breakdown tables
//   --faults=SPEC        fault-injection plan (see fault_spec.hpp grammar)
//   --fault-seed=N       RNG seed for the fault plane (default 1)
//   --adapt-interval=N   adaptive-scheme re-grading interval in virtual
//                        cycles (only meaningful with --scheme=adaptive)
//   --adapt-hysteresis=K consecutive intervals a site must vote to flip
//                        before it does (default 2)
//   --sample=W:D[:off]   SMARTS-style sampled run: detail windows of D
//                        virtual cycles every W cycles (functional warming
//                        between them); stats report per-counter estimates
//                        with 95% CIs. Excludes --trace*/--profile.
//                        See docs/SAMPLING.md.
//
// Environment variables OLDEN_TRACE, OLDEN_TRACE_BIN, OLDEN_TRACE_STREAM,
// OLDEN_STATS_JSON, OLDEN_PROFILE, OLDEN_PROFILE_INTERVAL,
// OLDEN_TRACE_LIMIT, OLDEN_FAULTS, OLDEN_FAULT_SEED, OLDEN_ADAPT_INTERVAL,
// OLDEN_ADAPT_HYSTERESIS and OLDEN_SAMPLE supply defaults when the
// corresponding flag is absent, so wrappers can enable collection without
// editing command lines.
//
// Malformed values (a non-numeric --trace-limit / --fault-seed, a zero or
// non-numeric --profile-interval, an unparsable --faults spec) are rejected
// with a one-line message on stderr and exit code 2 — never silently
// coerced.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>

#include "olden/fault/fault_spec.hpp"
#include "olden/trace/observer.hpp"

namespace olden::bench {

class ObsCli {
 public:
  /// Parse and remove the recognized flags from argv in place, so binaries
  /// that forward argv elsewhere (google-benchmark) see only the rest.
  ///
  /// Any other "--" argument is rejected with a message on stderr and
  /// exit code 2, unless it starts with one of the `passthrough` prefixes
  /// (e.g. "--paper-size" for the table binaries, "--benchmark_" for
  /// google-benchmark ones). "--help" is always passed through so the
  /// binary can print its own usage, and "--version" prints the stats /
  /// trace schema versions and exits 0.
  void parse(int* argc, char** argv,
             std::initializer_list<const char*> passthrough = {});

  /// The observer to install via BenchConfig/RunConfig — null when no
  /// observability output was requested, which keeps every runtime hook a
  /// no-op.
  [[nodiscard]] trace::Observer* observer() {
    return active_ ? &obs_ : nullptr;
  }
  [[nodiscard]] bool active() const { return active_; }

  /// Fault plan for BenchConfig/RunConfig — null unless --faults (or
  /// OLDEN_FAULTS) requested an enabled spec, which keeps fault-free runs
  /// on the zero-cost path.
  [[nodiscard]] const fault::FaultSpec* faults() const {
    return fault_spec_.enabled ? &fault_spec_ : nullptr;
  }
  [[nodiscard]] std::uint64_t fault_seed() const { return fault_seed_; }

  /// Adaptive-scheme knobs (--scheme=adaptive). interval 0 means "use the
  /// binary's default when the adaptive scheme is selected"; binaries that
  /// do not offer --scheme simply never read these.
  [[nodiscard]] std::uint64_t adapt_interval() const {
    return adapt_interval_;
  }
  [[nodiscard]] bool adapt_interval_set() const {
    return adapt_interval_set_;
  }
  [[nodiscard]] std::uint32_t adapt_hysteresis() const {
    return adapt_hysteresis_;
  }

  /// Label the next Machine run (no-op when inactive).
  void begin_run(std::string label,
                 std::map<std::string, std::string> meta = {});

  /// Write every requested output file and print any breakdown tables.
  /// Reports what was written on stdout; returns false (after printing the
  /// error to stderr) if any write failed.
  bool finish();

  /// One-line-per-flag usage text for --help output.
  static const char* usage();

 private:
  trace::Observer obs_;
  std::unique_ptr<trace::StreamingTraceSink> sink_;
  bool active_ = false;
  bool breakdown_ = false;
  std::string trace_path_;
  std::string trace_bin_path_;
  std::string trace_stream_path_;
  std::string stats_path_;
  std::string profile_path_;
  fault::FaultSpec fault_spec_;
  std::uint64_t fault_seed_ = 1;
  std::uint64_t adapt_interval_ = 0;
  bool adapt_interval_set_ = false;
  std::uint32_t adapt_hysteresis_ = 2;
};

}  // namespace olden::bench
