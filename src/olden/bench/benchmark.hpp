// The Olden benchmark suite interface (Table 1).
//
// Each of the ten benchmarks provides:
//  * an annotated-C program against the runtime API (Task coroutines with
//    rd/wr/futurecall/touch and explicit ALLOC placement),
//  * its IR description, from which the heuristic derives the
//    migrate-vs-cache decision for every dereference site,
//  * a host-side sequential reference that computes the same checksum, so
//    every (benchmark x processors x coherence scheme) cell in the paper's
//    tables is validated for correctness, not just timed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "olden/compiler/analysis.hpp"
#include "olden/profile/feedback.hpp"
#include "olden/runtime/machine.hpp"
#include "olden/support/stats.hpp"
#include "olden/support/types.hpp"

namespace olden::bench {

struct BenchConfig {
  ProcId nprocs = 1;
  Coherence scheme = Coherence::kLocalKnowledge;
  /// Force every dereference site to computation migration (Table 2's
  /// "Migrate-only" column — the prior-work execution model of [35]).
  bool migrate_only = false;
  /// "True sequential implementation": charge raw compute only, no
  /// pointer tests / futures / caching (the speedup denominator).
  bool sequential_baseline = false;
  /// Paper problem size; the default is scaled down so the full table
  /// regenerates in seconds (EXPERIMENTS.md records both).
  bool paper_size = false;
  /// Pinned tiny problem size for the regression harness
  /// (tools/bench_runner.py): small enough that every benchmark x scheme
  /// cell runs in well under a second, large enough that migration and
  /// caching behavior is still exercised. Overrides paper_size.
  bool tiny = false;
  std::uint64_t seed = 12345;
  /// Optional observability sink, forwarded into the Machine's RunConfig.
  /// Null (the default) keeps every instrumentation hook a no-op.
  trace::Observer* observer = nullptr;
  /// Optional fault-injection plan (src/olden/fault/), forwarded into the
  /// Machine's RunConfig. Null or disabled keeps the wire fault-free and
  /// the event stream byte-identical to a build without the fault plane.
  const fault::FaultSpec* faults = nullptr;
  std::uint64_t fault_seed = 1;
  /// Optional profile-guided feedback (--heuristic=profile:FILE): per-site
  /// mechanism overrides learned from an earlier profiled run, applied
  /// between the static heuristic and the builder's site_overrides().
  const profile::FeedbackTable* feedback = nullptr;
  /// Adaptive scheme (--scheme=adaptive): when adapt.interval > 0 the
  /// machine re-grades every dereference site each interval and flips it
  /// between caching and migration mid-run. Requires the eager-global
  /// coherence scheme as its base protocol (Machine::validated enforces
  /// this); interval == 0 leaves the run byte-identical to the static
  /// scheme.
  AdaptiveConfig adapt;
};

struct BenchResult {
  std::uint64_t checksum = 0;
  Cycles build_cycles = 0;   ///< structure-building phase
  Cycles kernel_cycles = 0;  ///< the timed computation
  Cycles total_cycles = 0;
  MachineStats stats;
  /// Heuristic output for this benchmark's program (empty when
  /// migrate_only / baseline bypassed it).
  std::string heuristic_report;

  [[nodiscard]] double total_seconds() const {
    return cycles_to_seconds(total_cycles);
  }
  [[nodiscard]] double kernel_seconds() const {
    return cycles_to_seconds(kernel_cycles);
  }
};

class Benchmark {
 public:
  virtual ~Benchmark() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  /// Problem size string for the given config (Table 1's third column).
  [[nodiscard]] virtual std::string problem_size(bool paper_size) const = 0;
  /// Table 2 reports whole-program times for Power, Barnes-Hut and Health,
  /// kernel-only times for the rest.
  [[nodiscard]] virtual bool whole_program_timing() const = 0;
  /// "M" or "M+C": what the heuristic chooses (Table 2 column 2).
  [[nodiscard]] virtual std::string heuristic_choice() const = 0;

  /// The benchmark's annotated-C program as IR for the heuristic.
  [[nodiscard]] virtual ir::Program ir_program() const = 0;
  [[nodiscard]] virtual std::size_t num_sites() const = 0;

  /// Execute under the simulated machine.
  [[nodiscard]] virtual BenchResult run(const BenchConfig& cfg) const = 0;

  /// Host-side sequential reference checksum for validation.
  [[nodiscard]] virtual std::uint64_t reference_checksum(
      const BenchConfig& cfg) const = 0;

  /// Per-site decisions fixed outside the loop heuristic. The real
  /// compiler special-cases stores that initialize freshly ALLOCed
  /// objects (locality is manifest from the allocation itself, no update
  /// matrix needed); builders use this so construction migrates to the
  /// new object's processor and the build phase parallelizes, as the
  /// paper's "data structure building phases show excellent speed-up"
  /// requires.
  [[nodiscard]] virtual std::vector<std::pair<SiteId, Mechanism>>
  site_overrides() const {
    return {};
  }

  /// Convenience: build the machine site table for `cfg` — heuristic
  /// decisions, or all-migrate for the migrate-only column.
  [[nodiscard]] std::vector<Mechanism> site_table(const BenchConfig& cfg,
                                                  std::string* report) const {
    if (cfg.migrate_only) {
      return std::vector<Mechanism>(num_sites(), Mechanism::kMigrate);
    }
    ir::Program prog = ir_program();
    if (prog.name.empty()) prog.name = name();  // stable site uids
    const ir::Selection sel = ir::analyze(prog, num_sites());
    if (report != nullptr) *report = sel.report();
    std::vector<Mechanism> table = sel.site_table;
    if (cfg.feedback != nullptr) {
      // A feedback row naming a site this build does not have is stale
      // (generated against an older benchmark); warn with the exact uid
      // so the user can regenerate the file, and otherwise ignore it.
      for (const std::string& uid :
           cfg.feedback->stale_uids(name(), num_sites())) {
        std::fprintf(stderr,
                     "warning: feedback row %s names a site outside this "
                     "build's %zu-site table for %s -- ignored (stale "
                     "feedback file?)\n",
                     uid.c_str(), num_sites(), name().c_str());
      }
      for (std::size_t s = 0; s < table.size(); ++s) {
        if (const auto m =
                cfg.feedback->lookup(name(), static_cast<SiteId>(s))) {
          table[s] = *m;
        }
      }
    }
    for (const auto& [site, mech] : site_overrides()) {
      if (table.size() <= site) table.resize(site + 1, Mechanism::kCache);
      table[site] = mech;
    }
    return table;
  }
};

/// All ten benchmarks, in Table 1 order.
const std::vector<const Benchmark*>& suite();
const Benchmark* find_benchmark(const std::string& name);

// factory functions, one per benchmark translation unit
const Benchmark& treeadd_benchmark();
const Benchmark& power_benchmark();
const Benchmark& tsp_benchmark();
const Benchmark& mst_benchmark();
const Benchmark& bisort_benchmark();
const Benchmark& voronoi_benchmark();
const Benchmark& em3d_benchmark();
const Benchmark& barnes_benchmark();
const Benchmark& perimeter_benchmark();
const Benchmark& health_benchmark();

/// Split a processor range for a binary divide: the left child builds on
/// the upper half, the right stays with the parent's processor. A
/// single-processor range is shared by both children.
struct ProcRange {
  ProcId lo, hi;
};
inline std::pair<ProcRange, ProcRange> split_procs(ProcId lo, ProcId hi) {
  if (hi - lo <= 1) return {{lo, hi}, {lo, hi}};
  const ProcId mid = lo + (hi - lo) / 2;
  return {{mid, hi}, {lo, mid}};
}

/// Shared helper: owner of block i of n items over P processors.
inline ProcId block_owner(std::uint64_t i, std::uint64_t n, ProcId nprocs) {
  return static_cast<ProcId>(i * nprocs / n);
}

/// Mix a 64-bit value into a running checksum (order-sensitive).
inline std::uint64_t mix_checksum(std::uint64_t acc, std::uint64_t v) {
  acc ^= v + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  return acc;
}

/// Quantize a double for checksumming (stable across run orders as long
/// as the arithmetic is identical, which determinism guarantees).
inline std::uint64_t quantize(double v, double scale = 1e6) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(v * scale));
}

}  // namespace olden::bench
