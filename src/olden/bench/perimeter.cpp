// Perimeter: perimeter of a quad-tree encoded raster image (Table 1, [36]).
//
// The image is a rasterized disc; the quadtree splits mixed squares into
// four quadrants down to single pixels. Samet's algorithm visits every
// black leaf and, for each of its four sides, locates the adjacent
// neighbour of greater-or-equal size by walking *up* through parent
// pointers and mirroring back *down* — "superficially similar to TreeAdd,
// but traverses the tree in a very different way".
//
// Heuristic behaviour (§5): the main traversal is a four-way recursion
// (affinity combine ~99%) — migrate; neighbour finding follows a single
// unpredictable path ("they may be far away in the tree") — cache.
// Perimeter is one of the three benchmarks with explicit affinity hints
// (the parent/mirror paths are hinted low).
//
// The host reference counts black-white pixel adjacencies directly on the
// image function; Samet's theorem says the quadtree computation equals it
// exactly.
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"

namespace olden::bench {
namespace {

constexpr Cycles kWorkPerNode = 50;
constexpr Cycles kWorkPerProbe = 40;

enum Color : std::int32_t { kWhite = 0, kBlack = 1, kGrey = 2 };
enum Quadrant : std::int32_t { kNW = 0, kNE = 1, kSW = 2, kSE = 3 };
enum Side : int { kNorth = 0, kEast = 1, kSouth = 2, kWest = 3 };

struct QNode {
  std::int32_t color;
  std::int32_t quadrant;  // which child of the parent this node is
  std::int32_t size;      // side length of the covered square
  GPtr<QNode> child[4];
  GPtr<QNode> parent;
};

enum Site : SiteId {
  kChild,      // traversal child reads: migrate
  kColor,      // t->color on the traversal variable
  kParent,     // neighbour finding: up-walk (cache)
  kNbChild,    // neighbour finding: mirrored down-walk (cache)
  kNbColor,    // neighbour colour/size probes (cache)
  kNbSize,
  kInit,
  kNumSites
};

/// The image: a disc of radius 0.37*S centred in an S x S grid. A square
/// is uniformly black iff its farthest pixel centre is inside the circle,
/// uniformly white iff its nearest pixel centre is outside.
struct Image {
  int size;
  double cx, cy, r2;

  explicit Image(int s)
      : size(s),
        cx(0.5 * s),
        cy(0.5 * s),
        r2(0.37 * s * 0.37 * s) {}

  [[nodiscard]] bool pixel_black(int x, int y) const {
    const double dx = x + 0.5 - cx;
    const double dy = y + 0.5 - cy;
    return dx * dx + dy * dy <= r2;
  }

  /// 0 = all white, 1 = all black, 2 = mixed, for square [x,x+s)x[y,y+s).
  [[nodiscard]] int classify(int x, int y, int s) const {
    auto clamp = [](double v, double lo, double hi) {
      return v < lo ? lo : (v > hi ? hi : v);
    };
    const double lo_x = x + 0.5, hi_x = x + s - 0.5;
    const double lo_y = y + 0.5, hi_y = y + s - 0.5;
    // Nearest pixel centre to the disc centre:
    const double nx = clamp(cx, lo_x, hi_x), ny = clamp(cy, lo_y, hi_y);
    const double nd = (nx - cx) * (nx - cx) + (ny - cy) * (ny - cy);
    // Farthest pixel centre:
    const double fx = (cx - lo_x > hi_x - cx) ? lo_x : hi_x;
    const double fy = (cy - lo_y > hi_y - cy) ? lo_y : hi_y;
    const double fd = (fx - cx) * (fx - cx) + (fy - cy) * (fy - cy);
    if (fd <= r2) return kBlack;
    if (nd > r2) return kWhite;
    return kGrey;
  }
};

// ---------------------------------------------------------------------------

Task<GPtr<QNode>> build(Machine& m, const Image& img, int x, int y, int s,
                        std::int32_t quadrant, GPtr<QNode> parent, ProcId plo,
                        ProcId phi) {
  const int cls = img.classify(x, y, s);
  auto n = m.alloc<QNode>(plo);
  co_await wr(n, &QNode::color, static_cast<std::int32_t>(cls), kInit);
  co_await wr(n, &QNode::quadrant, quadrant, kInit);
  co_await wr(n, &QNode::size, static_cast<std::int32_t>(s), kInit);
  co_await wr(n, &QNode::parent, parent, kInit);
  static const QNode probe{};
  if (cls == kGrey) {
    const int hs = s / 2;
    const int xs[4] = {x, x + hs, x, x + hs};       // NW NE SW SE
    const int ys[4] = {y, y, y + hs, y + hs};
    for (int q = 0; q < 4; ++q) {
      const ProcId span = static_cast<ProcId>(phi - plo);
      const ProcId clo = plo + static_cast<ProcId>(span * q / 4);
      ProcId chi = q == 3 ? phi : plo + static_cast<ProcId>(span * (q + 1) / 4);
      if (chi <= clo) chi = clo + 1;
      auto c =
          co_await build(m, img, xs[q], ys[q], hs, q, n, clo, chi);
      const auto off = static_cast<std::uint32_t>(
          reinterpret_cast<const char*>(&probe.child[q]) -
          reinterpret_cast<const char*>(&probe));
      co_await detail::WriteAwaiter<GPtr<QNode>>{n.addr().plus(off), kInit, c};
    }
  }
  co_return n;
}

detail::ReadAwaiter<GPtr<QNode>> rd_kid(GPtr<QNode> v, int q, SiteId site) {
  static const QNode probe{};
  const auto off = static_cast<std::uint32_t>(
      reinterpret_cast<const char*>(&probe.child[q]) -
      reinterpret_cast<const char*>(&probe));
  return {v.addr().plus(off), site};
}

/// Mirror tables for Samet neighbour finding. adj[side][q] is true if
/// quadrant q is adjacent to that side of the parent; mirror[side][q] is
/// the quadrant reflected across that side.
constexpr bool kAdj[4][4] = {
    {true, true, false, false},   // north: NW NE
    {false, true, false, true},   // east:  NE SE
    {false, false, true, true},   // south: SW SE
    {true, false, true, false},   // west:  NW SW
};
constexpr int kMirror[4][4] = {
    {kSW, kSE, kNW, kNE},  // north/south flip
    {kNE, kNW, kSE, kSW},  // east/west flip
    {kSW, kSE, kNW, kNE},
    {kNE, kNW, kSE, kSW},
};

/// Greater-or-equal-size neighbour of t on `side` (null at image edge).
Task<GPtr<QNode>> neighbor(Machine& m, GPtr<QNode> t, int side) {
  const auto parent = co_await rd(t, &QNode::parent, kParent);
  if (!parent) co_return GPtr<QNode>{};
  const auto q = co_await rd(t, &QNode::quadrant, kNbColor);
  m.work(kWorkPerProbe);
  if (!kAdj[side][q]) {
    // The neighbour is a sibling: mirror across the side inside the
    // same parent.
    co_return co_await rd_kid(parent, kMirror[side][q], kNbChild);
  }
  // We sit against the parent's own `side`: the neighbour lies outside.
  const GPtr<QNode> up = co_await neighbor(m, parent, side);
  if (!up) co_return up;
  const auto up_color = co_await rd(up, &QNode::color, kNbColor);
  if (up_color != kGrey) co_return up;
  co_return co_await rd_kid(up, kMirror[side][q], kNbChild);
}

/// Total length of white (or image-edge) border along `side` of the black
/// leaf `t`, examining the neighbour subtree's adjacent edge.
Task<std::int64_t> count_side(Machine& m, GPtr<QNode> nb, int side,
                              std::int64_t size) {
  if (!nb) co_return size;  // image edge counts as perimeter
  const auto color = co_await rd(nb, &QNode::color, kNbColor);
  m.work(kWorkPerProbe);
  if (color == kWhite) co_return size;
  if (color == kBlack) co_return 0;
  // Grey: sum the two children adjacent to *our* side (i.e. on the
  // neighbour's opposite side).
  const int opposite = (side + 2) % 4;
  std::int64_t sum = 0;
  for (int q = 0; q < 4; ++q) {
    if (!kAdj[opposite][q]) continue;
    const auto c = co_await rd_kid(nb, q, kNbChild);
    sum += co_await count_side(m, c, side, size / 2);
  }
  co_return sum;
}

Task<std::int64_t> perimeter(Machine& m, GPtr<QNode> t) {
  const auto color = co_await rd(t, &QNode::color, kColor);
  m.work(kWorkPerNode);
  if (color == kGrey) {
    std::vector<Future<std::int64_t>> fs;
    for (int q = 0; q < 3; ++q) {
      const auto c = co_await rd_kid(t, q, kChild);
      fs.push_back(co_await futurecall(perimeter(m, c)));
    }
    const auto last = co_await rd_kid(t, 3, kChild);
    std::int64_t sum = co_await perimeter(m, last);
    for (auto& f : fs) sum += co_await touch(f);
    co_return sum;
  }
  if (color == kWhite) co_return 0;
  // Black leaf: probe all four sides.
  const auto size = co_await rd(t, &QNode::size, kColor);
  std::int64_t sum = 0;
  for (int side = 0; side < 4; ++side) {
    const GPtr<QNode> nb = co_await neighbor(m, t, side);
    if (nb) {
      const auto nb_size = co_await rd(nb, &QNode::size, kNbSize);
      (void)nb_size;
    }
    sum += co_await count_side(m, nb, side, size);
  }
  co_return sum;
}

struct RootOut {
  std::int64_t perim = 0;
  Cycles build_end = 0;
};

Task<RootOut> root(Machine& m, const Image& img) {
  RootOut out;
  auto t = co_await build(m, img, 0, 0, img.size, kNW, GPtr<QNode>{}, 0,
                          m.nprocs());
  out.build_end = m.now_max();
  out.perim = co_await perimeter(m, t);
  co_return out;
}

int image_size_for(const BenchConfig& cfg) {
  if (cfg.tiny) return 256;
  return cfg.paper_size ? 4096 : 1024;
}

class Perimeter final : public Benchmark {
 public:
  std::string name() const override { return "Perimeter"; }
  std::string description() const override {
    return "Computes the perimeter of a quad-tree encoded raster image";
  }
  std::string problem_size(bool paper) const override {
    return paper ? "4K x 4K image" : "1K x 1K image";
  }
  bool whole_program_timing() const override { return false; }
  std::string heuristic_choice() const override { return "M+C"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    // Explicit hints (the paper names Perimeter among the three): the
    // up/mirror paths of neighbour finding are hinted low — neighbours
    // "may be far away in the tree".
    p.structs = {{"qnode",
                  {{"child", std::nullopt}, {"parent", 0.60},
                   {"color", std::nullopt}, {"size", std::nullopt}}}};

    Procedure per;
    per.name = "perimeter";
    per.params = {"t"};
    per.rec_loop_id = 0;
    If br;
    for (int q = 0; q < 4; ++q) {
      Call c;
      c.callee = "perimeter";
      c.args = {{"t", {{"qnode", "child"}}}};
      c.future = q < 3;
      br.then_branch.push_back(c);
    }
    br.then_branch.push_back(deref("t", kChild));
    Call nbc;
    nbc.callee = "neighbor";
    nbc.args = {{"t", {}}};
    br.else_branch.push_back(deref("t", kColor));
    br.else_branch.push_back(nbc);
    per.body.push_back(std::move(br));
    p.procs.push_back(std::move(per));

    Procedure nb;
    nb.name = "neighbor";
    nb.params = {"t"};
    nb.rec_loop_id = 1;
    If nbr;
    Call up;
    up.callee = "neighbor";
    up.args = {{"t", {{"qnode", "parent"}}}};
    nbr.else_branch.push_back(
        assign("p", "t", {{"qnode", "parent"}}, SiteId{kParent}));
    nbr.else_branch.push_back(up);
    nbr.else_branch.push_back(assign("q", "p", {{"qnode", "child"}},
                                     SiteId{kNbChild}));
    nbr.else_branch.push_back(deref("q", kNbColor));
    nbr.else_branch.push_back(deref("q", kNbSize));
    nb.body.push_back(std::move(nbr));
    p.procs.push_back(std::move(nb));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    return {{kInit, Mechanism::kMigrate}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    const Image img(image_size_for(cfg));
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    const RootOut out = run_program(m, root(m, img));
    res.checksum = static_cast<std::uint64_t>(out.perim);
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    // Pixel-level count: every black pixel contributes one unit per
    // white-or-outside 4-neighbour. Equals the quadtree sum exactly.
    const Image img(image_size_for(cfg));
    std::int64_t perim = 0;
    const int s = img.size;
    // Only pixels near the circle boundary can contribute; scan a band.
    for (int y = 0; y < s; ++y) {
      for (int x = 0; x < s; ++x) {
        if (!img.pixel_black(x, y)) continue;
        if (x == 0 || !img.pixel_black(x - 1, y)) ++perim;
        if (x == s - 1 || !img.pixel_black(x + 1, y)) ++perim;
        if (y == 0 || !img.pixel_black(x, y - 1)) ++perim;
        if (y == s - 1 || !img.pixel_black(x, y + 1)) ++perim;
      }
    }
    return static_cast<std::uint64_t>(perim);
  }
};

}  // namespace

const Benchmark& perimeter_benchmark() {
  static const Perimeter b;
  return b;
}

}  // namespace olden::bench
