// Health: simulates the Columbian health care system (Table 1, [29]).
//
// A four-way tree of villages; each village hosts a hospital with waiting,
// assessment and treatment lists of patients. Per timestep the tree is
// traversed; patients are generated at leaf villages, assessed, and either
// treated locally or passed up to the parent hospital — so patient records
// cross processor boundaries when subtree roots change owners.
//
// Heuristic behaviour (§5): the four-way recursion combines to
// 1-(1-.7)^4 = 99.2% — migrate the tree traversal; the patient-list walks
// are single-update 70% loops — cache the list items. "The heuristic,
// according to its design, chooses migration for the tree traversal, and
// caching to access remote items in the lists." Since fewer than ~2% of
// patients arrive from a remote processor, the local-knowledge coherence
// scheme wins despite its coarse invalidation (Appendix A).
//
// All simulation randomness is integer LCG state stored in the villages,
// so the checksum is exact across machine sizes and schemes.
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"

namespace olden::bench {
namespace {

struct SimParams {
  int levels = 6;  // (4^6 - 1) / 3 = 1365 villages
  int steps = 60;
};

struct Patient {
  std::int32_t id;
  std::int32_t ticks;        ///< time spent in the current list
  std::int32_t hops;         ///< hospitals visited
  std::int64_t total_time;   ///< lifetime so far
};

struct Cell {
  GPtr<Patient> pat;
  GPtr<Cell> next;
};

struct Village {
  GPtr<Village> child[4];
  std::int32_t level = 0;     ///< leaf = 0
  std::int32_t vid = 0;
  std::uint32_t seed = 0;     ///< per-village LCG state
  std::int32_t personnel = 0; ///< free treatment slots
  GPtr<Cell> waiting;
  GPtr<Cell> assess;
  GPtr<Cell> inside;
  std::int64_t treated = 0;
  std::int64_t wait_total = 0;
};

enum Site : SiteId {
  kChild,       // v->child[i] (tree traversal: migrate)
  kVillageFld,  // v's scalar fields (same variable: migrate class)
  kListHead,    // v->waiting / assess / inside heads
  kCellNext,    // c = c->next (list walk: cache)
  kCellPat,     // c->pat
  kPatFld,      // p-> fields  (the remote cacheable reads)
  kInit,        // builder stores
  kNumSites
};

constexpr Cycles kWorkPerVillage = 400;
constexpr Cycles kWorkPerPatient = 90;
constexpr std::int32_t kAssessTicks = 3;
constexpr std::int32_t kTreatTicks = 4;

std::uint32_t lcg_next(std::uint32_t& s) {
  s = s * 1664525u + 1013904223u;
  return s;
}

// ---------------------------------------------------------------------------
// Simulated implementation
// ---------------------------------------------------------------------------

Task<GPtr<Village>> build(Machine& m, int level, std::int32_t& next_id,
                          ProcId lo, ProcId hi) {
  auto v = m.alloc<Village>(lo);
  const std::int32_t vid = next_id++;
  co_await wr(v, &Village::level, std::int32_t{level}, kInit);
  co_await wr(v, &Village::vid, vid, kInit);
  co_await wr(v, &Village::seed,
              static_cast<std::uint32_t>(vid) * 2654435761u + 12345u, kInit);
  co_await wr(v, &Village::personnel, std::int32_t{level == 0 ? 2 : 4},
              kInit);
  if (level > 0) {
    Village tmp{};  // member_offset needs a live member pointer per slot
    for (int i = 0; i < 4; ++i) {
      const ProcId span = static_cast<ProcId>(hi - lo);
      const ProcId clo = lo + static_cast<ProcId>(span * i / 4);
      const ProcId chi =
          i == 3 ? hi : lo + static_cast<ProcId>(span * (i + 1) / 4);
      auto c = co_await build(m, level - 1, next_id, clo,
                              chi > clo ? chi : clo + 1);
      // child[i]: write via raw element address (arrays inside structs).
      const auto base = v.addr().plus(
          static_cast<std::uint32_t>(reinterpret_cast<const char*>(&tmp.child[i]) -
                                     reinterpret_cast<const char*>(&tmp)));
      co_await detail::WriteAwaiter<GPtr<Village>>{base, kInit, c};
    }
  }
  co_return v;
}

detail::ReadAwaiter<GPtr<Village>> rd_child(GPtr<Village> v, int i,
                                            SiteId site) {
  static const Village probe{};
  const auto off = static_cast<std::uint32_t>(
      reinterpret_cast<const char*>(&probe.child[i]) -
      reinterpret_cast<const char*>(&probe));
  return {v.addr().plus(off), site};
}

/// Pop every cell of a list; returns the head and clears the village's
/// list (the caller re-threads cells as it processes them).
Task<GPtr<Cell>> take_list(Machine& m, GPtr<Village> v,
                           GPtr<Cell> Village::* head) {
  auto h = co_await rd(v, head, kListHead);
  co_await wr(v, head, GPtr<Cell>{}, kListHead);
  (void)m;
  co_return h;
}

Task<int> push_list(Machine& m, GPtr<Village> v, GPtr<Cell> Village::* head,
                    GPtr<Cell> cell) {
  auto h = co_await rd(v, head, kListHead);
  co_await wr(cell, &Cell::next, h, kCellNext);
  co_await wr(v, head, cell, kListHead);
  (void)m;
  co_return 0;
}

/// One village, one timestep. Returns a list of cells to pass up.
Task<GPtr<Cell>> sim(Machine& m, GPtr<Village> v) {
  if (!v) co_return GPtr<Cell>{};
  const auto level = co_await rd(v, &Village::level, kVillageFld);

  // Children first, in parallel.
  std::vector<Future<GPtr<Cell>>> fs;
  if (level > 0) {
    for (int i = 0; i < 4; ++i) {
      const auto c = co_await rd_child(v, i, kChild);
      if (c) fs.push_back(co_await futurecall(sim(m, c)));
    }
  }
  m.work(kWorkPerVillage);

  // Treatment: advance patients inside the hospital; discharge when done.
  {
    GPtr<Cell> c = co_await take_list(m, v, &Village::inside);
    while (c) {
      const auto next = co_await rd(c, &Cell::next, kCellNext);
      const auto p = co_await rd(c, &Cell::pat, kCellPat);
      auto ticks = co_await rd(p, &Patient::ticks, kPatFld);
      auto total = co_await rd(p, &Patient::total_time, kPatFld);
      co_await wr(p, &Patient::total_time, total + 1, kPatFld);
      m.work(kWorkPerPatient);
      if (++ticks >= kTreatTicks) {
        // Discharged.
        auto treated = co_await rd(v, &Village::treated, kVillageFld);
        co_await wr(v, &Village::treated, treated + 1, kVillageFld);
        auto wt = co_await rd(v, &Village::wait_total, kVillageFld);
        co_await wr(v, &Village::wait_total,
                    wt + co_await rd(p, &Patient::total_time, kPatFld),
                    kVillageFld);
        auto pers = co_await rd(v, &Village::personnel, kVillageFld);
        co_await wr(v, &Village::personnel, pers + 1, kVillageFld);
      } else {
        co_await wr(p, &Patient::ticks, ticks, kPatFld);
        co_await push_list(m, v, &Village::inside, c);
      }
      c = next;
    }
  }

  // Assessment: after kAssessTicks, 25% of patients go up (if not root),
  // the rest join the local waiting room.
  GPtr<Cell> up;
  {
    GPtr<Cell> c = co_await take_list(m, v, &Village::assess);
    while (c) {
      const auto next = co_await rd(c, &Cell::next, kCellNext);
      const auto p = co_await rd(c, &Cell::pat, kCellPat);
      auto ticks = co_await rd(p, &Patient::ticks, kPatFld);
      auto total = co_await rd(p, &Patient::total_time, kPatFld);
      co_await wr(p, &Patient::total_time, total + 1, kPatFld);
      m.work(kWorkPerPatient);
      if (++ticks >= kAssessTicks) {
        auto seed = co_await rd(v, &Village::seed, kVillageFld);
        const bool refer = (lcg_next(seed) >> 16) % 4 == 0;
        co_await wr(v, &Village::seed, seed, kVillageFld);
        co_await wr(p, &Patient::ticks, std::int32_t{0}, kPatFld);
        if (refer && level < 100) {
          auto hops = co_await rd(p, &Patient::hops, kPatFld);
          co_await wr(p, &Patient::hops, hops + 1, kPatFld);
          co_await wr(c, &Cell::next, up, kCellNext);
          up = c;
        } else {
          co_await push_list(m, v, &Village::waiting, c);
        }
      } else {
        co_await wr(p, &Patient::ticks, ticks, kPatFld);
        co_await push_list(m, v, &Village::assess, c);
      }
      c = next;
    }
  }

  // Waiting room -> assessment while personnel are free.
  {
    GPtr<Cell> c = co_await take_list(m, v, &Village::waiting);
    while (c) {
      const auto next = co_await rd(c, &Cell::next, kCellNext);
      const auto p = co_await rd(c, &Cell::pat, kCellPat);
      auto pers = co_await rd(v, &Village::personnel, kVillageFld);
      // Waiting patients are examined but their records are not touched —
      // most shared patient data is read-only across migrations, which is
      // what the global-knowledge coherence scheme exploits (Table 3).
      const auto total = co_await rd(p, &Patient::total_time, kPatFld);
      (void)total;
      m.work(kWorkPerPatient);
      if (pers > 0) {
        co_await wr(v, &Village::personnel, pers - 1, kVillageFld);
        co_await wr(p, &Patient::ticks, std::int32_t{0}, kPatFld);
        co_await push_list(m, v, &Village::assess, c);
      } else {
        co_await push_list(m, v, &Village::waiting, c);
      }
      c = next;
    }
  }

  // Leaf villages generate new patients with probability 1/3.
  if (level == 0) {
    auto seed = co_await rd(v, &Village::seed, kVillageFld);
    const bool born = (lcg_next(seed) >> 16) % 3 == 0;
    co_await wr(v, &Village::seed, seed, kVillageFld);
    if (born) {
      const auto vid = co_await rd(v, &Village::vid, kVillageFld);
      auto p = m.alloc<Patient>(v.proc());
      co_await wr(p, &Patient::id, vid, kInit);
      co_await wr(p, &Patient::ticks, std::int32_t{0}, kInit);
      co_await wr(p, &Patient::hops, std::int32_t{0}, kInit);
      co_await wr(p, &Patient::total_time, std::int64_t{0}, kInit);
      auto cell = m.alloc<Cell>(v.proc());
      co_await wr(cell, &Cell::pat, p, kInit);
      co_await push_list(m, v, &Village::waiting, cell);
    }
  }

  // Collect patients referred up by the children; their records live on
  // the children's processors — these are the cached remote reads.
  for (auto& f : fs) {
    GPtr<Cell> c = co_await touch(f);
    while (c) {
      const auto next = co_await rd(c, &Cell::next, kCellNext);
      const auto p = co_await rd(c, &Cell::pat, kCellPat);
      const auto hops = co_await rd(p, &Patient::hops, kPatFld);
      (void)hops;
      m.work(kWorkPerPatient);
      // Re-cell on this village's processor; the patient record stays put.
      auto nc = m.alloc<Cell>(v.proc());
      co_await wr(nc, &Cell::pat, p, kInit);
      co_await push_list(m, v, &Village::waiting, nc);
      c = next;
    }
  }
  co_return up;
}

struct Totals {
  std::int64_t treated = 0;
  std::int64_t wait = 0;
  std::int64_t backlog = 0;
};

Task<Totals> collect(Machine& m, GPtr<Village> v) {
  Totals t;
  if (!v) co_return t;
  const auto level = co_await rd(v, &Village::level, kVillageFld);
  if (level > 0) {
    for (int i = 0; i < 4; ++i) {
      const auto c = co_await rd_child(v, i, kChild);
      const Totals ct = co_await collect(m, c);
      t.treated += ct.treated;
      t.wait += ct.wait;
      t.backlog += ct.backlog;
    }
  }
  t.treated += co_await rd(v, &Village::treated, kVillageFld);
  t.wait += co_await rd(v, &Village::wait_total, kVillageFld);
  for (auto head : {&Village::waiting, &Village::assess, &Village::inside}) {
    GPtr<Cell> c = co_await rd(v, head, kListHead);
    while (c) {
      ++t.backlog;
      c = co_await rd(c, &Cell::next, kCellNext);
    }
  }
  co_return t;
}

struct RootOut {
  Totals totals;
  Cycles build_end = 0;
};

Task<RootOut> root(Machine& m, const SimParams& sp) {
  RootOut out;
  std::int32_t next_id = 0;
  auto top = co_await build(m, sp.levels - 1, next_id, 0, m.nprocs());
  out.build_end = m.now_max();
  for (int s = 0; s < sp.steps; ++s) {
    GPtr<Cell> up = co_await sim(m, top);
    // The root hospital admits everything referred to it.
    while (up) {
      const auto next = co_await rd(up, &Cell::next, kCellNext);
      co_await push_list(m, top, &Village::waiting, up);
      up = next;
    }
  }
  out.totals = co_await collect(m, top);
  co_return out;
}

// ---------------------------------------------------------------------------
// Host reference: the same simulation on plain data structures.
// ---------------------------------------------------------------------------

struct RefVillage {
  std::vector<int> child;
  int level = 0;
  int vid = 0;
  std::uint32_t seed = 0;
  int personnel = 0;
  std::vector<int> waiting, assess, inside;  // patient indices
  std::int64_t treated = 0, wait_total = 0;
};

struct RefPatient {
  int ticks = 0, hops = 0;
  std::int64_t total = 0;
};

struct RefSim {
  std::vector<RefVillage> vs;
  std::vector<RefPatient> ps;

  int build(int level, int& next_id) {
    const int idx = static_cast<int>(vs.size());
    vs.emplace_back();
    const int vid = next_id++;
    vs[idx].level = level;
    vs[idx].vid = vid;
    vs[idx].seed = static_cast<std::uint32_t>(vid) * 2654435761u + 12345u;
    vs[idx].personnel = level == 0 ? 2 : 4;
    if (level > 0) {
      for (int i = 0; i < 4; ++i) {
        const int c = build(level - 1, next_id);
        vs[idx].child.push_back(c);
      }
    }
    return idx;
  }

  std::vector<int> sim(int vi) {
    RefVillage& v = vs[vi];
    std::vector<std::vector<int>> child_up;
    if (v.level > 0) {
      for (int c : v.child) child_up.push_back(sim(c));
    }
    // inside
    {
      auto list = std::move(v.inside);
      v.inside.clear();
      // The simulated version walks a LIFO-threaded list: replicate its
      // order exactly (push_list prepends, take walks head to tail).
      for (int pi : list) {
        RefPatient& p = ps[static_cast<std::size_t>(pi)];
        p.total += 1;
        if (++p.ticks >= kTreatTicks) {
          v.treated += 1;
          v.wait_total += p.total;
          v.personnel += 1;
        } else {
          v.inside.insert(v.inside.begin(), pi);
        }
      }
    }
    std::vector<int> up;
    {
      auto list = std::move(v.assess);
      v.assess.clear();
      for (int pi : list) {
        RefPatient& p = ps[static_cast<std::size_t>(pi)];
        p.total += 1;
        if (++p.ticks >= kAssessTicks) {
          const bool refer = (lcg_next(v.seed) >> 16) % 4 == 0;
          p.ticks = 0;
          if (refer) {
            p.hops += 1;
            up.insert(up.begin(), pi);
          } else {
            v.waiting.insert(v.waiting.begin(), pi);
          }
        } else {
          v.assess.insert(v.assess.begin(), pi);
        }
      }
    }
    {
      auto list = std::move(v.waiting);
      v.waiting.clear();
      for (int pi : list) {
        RefPatient& p = ps[static_cast<std::size_t>(pi)];
        (void)p;
        if (v.personnel > 0) {
          v.personnel -= 1;
          p.ticks = 0;
          v.assess.insert(v.assess.begin(), pi);
        } else {
          v.waiting.insert(v.waiting.begin(), pi);
        }
      }
    }
    if (v.level == 0) {
      const bool born = (lcg_next(v.seed) >> 16) % 3 == 0;
      if (born) {
        const int pi = static_cast<int>(ps.size());
        ps.emplace_back();
        v.waiting.insert(v.waiting.begin(), pi);
      }
    }
    for (auto& cu : child_up) {
      for (int pi : cu) v.waiting.insert(v.waiting.begin(), pi);
    }
    return up;
  }
};

// ---------------------------------------------------------------------------

SimParams params_for(const BenchConfig& cfg) {
  SimParams sp;
  if (cfg.tiny) {
    sp.levels = 4;
    sp.steps = 15;
    return sp;
  }
  if (!cfg.paper_size) sp.steps = 60;
  else sp.steps = 120;
  return sp;
}

class Health final : public Benchmark {
 public:
  std::string name() const override { return "Health"; }
  std::string description() const override {
    return "Simulates the Columbian health care system";
  }
  std::string problem_size(bool) const override { return "1365 villages"; }
  bool whole_program_timing() const override { return true; }
  std::string heuristic_choice() const override { return "M+C"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    p.structs = {
        {"village", {{"child", std::nullopt}, {"waiting", std::nullopt},
                     {"assess", std::nullopt}, {"inside", std::nullopt}}},
        {"cell", {{"next", std::nullopt}, {"pat", std::nullopt}}},
    };
    Procedure s;
    s.name = "sim";
    s.params = {"v"};
    s.rec_loop_id = 0;
    If br;
    for (int i = 0; i < 4; ++i) {
      Call c;
      c.callee = "sim";
      c.args = {{"v", {{"village", "child"}}}};
      c.future = true;
      br.else_branch.push_back(c);
    }
    br.else_branch.push_back(deref("v", kChild));
    br.else_branch.push_back(deref("v", kVillageFld));
    br.else_branch.push_back(deref("v", kListHead));
    // Patient-list walks: three structurally identical loops; one stands
    // for all (same sites).
    While lw;
    lw.loop_id = 1;
    lw.body.push_back(assign("pp", "c", {{"cell", "pat"}}, SiteId{kCellPat}));
    lw.body.push_back(deref("pp", kPatFld));
    lw.body.push_back(assign("c", "c", {{"cell", "next"}}, SiteId{kCellNext}));
    br.else_branch.push_back(std::move(lw));
    s.body.push_back(std::move(br));
    p.procs.push_back(std::move(s));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    return {{kInit, Mechanism::kMigrate}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    const SimParams sp = params_for(cfg);
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    const RootOut out = run_program(m, root(m, sp));
    std::uint64_t cs = mix_checksum(0, static_cast<std::uint64_t>(out.totals.treated));
    cs = mix_checksum(cs, static_cast<std::uint64_t>(out.totals.wait));
    cs = mix_checksum(cs, static_cast<std::uint64_t>(out.totals.backlog));
    res.checksum = cs;
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    const SimParams sp = params_for(cfg);
    RefSim sim;
    int next_id = 0;
    const int top = sim.build(sp.levels - 1, next_id);
    for (int s = 0; s < sp.steps; ++s) {
      auto up = sim.sim(top);
      for (int pi : up) {
        sim.vs[static_cast<std::size_t>(top)].waiting.insert(
            sim.vs[static_cast<std::size_t>(top)].waiting.begin(), pi);
      }
    }
    std::int64_t treated = 0, wait = 0, backlog = 0;
    for (const RefVillage& v : sim.vs) {
      treated += v.treated;
      wait += v.wait_total;
      backlog += static_cast<std::int64_t>(v.waiting.size() +
                                           v.assess.size() + v.inside.size());
    }
    std::uint64_t cs = mix_checksum(0, static_cast<std::uint64_t>(treated));
    cs = mix_checksum(cs, static_cast<std::uint64_t>(wait));
    cs = mix_checksum(cs, static_cast<std::uint64_t>(backlog));
    return cs;
  }
};

}  // namespace

const Benchmark& health_benchmark() {
  static const Health b;
  return b;
}

}  // namespace olden::bench
