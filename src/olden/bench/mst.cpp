// MST: minimum spanning tree of a graph, Bentley's algorithm (Table 1, [6]).
//
// Vertices are distributed blocked and chained into one global list. Each
// of the N-1 steps (1) walks the whole vertex list to find the non-tree
// vertex closest to the tree — the walk migrates at every processor
// boundary, O(N * P) migrations in total, which "serve mostly as a
// mechanism for synchronization" and make this the paper's worst scaler
// (5.14x at 32) — and (2) relaxes every vertex's distance against the
// newly added vertex, in parallel across processor blocks.
//
// Edge weights come from a symmetric hash of the endpoint ids (the
// original stores per-vertex hash tables of random weights; a hash
// function yields the same distribution without materializing the N^2
// edges — same reads, same arithmetic in the reference).
//
// MST is one of the three benchmarks with explicit path-affinity hints:
// the vertex list's blocked layout gives next-affinity 1-(P-1)/(N-1).
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"

namespace olden::bench {
namespace {

constexpr std::int32_t kInf = 0x3fffffff;
constexpr Cycles kWorkPerScan = 120;
constexpr Cycles kWorkPerRelax = 300;

struct Vertex {
  std::int32_t id;
  std::int32_t dist;     // current distance to the tree
  std::int32_t in_tree;  // 0/1
  GPtr<Vertex> next;     // global blocked chain
};

/// Per-processor block descriptor, resident on its own processor. The
/// relax phase recomputes the block's minimum locally (Bentley's parallel
/// algorithm); the BlueRule combine then *migrates* from block to block
/// reading the cached minima — P-1 migrations per step, N steps: the
/// O(N*P) synchronizing migrations the paper blames for MST's poor
/// scaling.
struct Block {
  GPtr<Vertex> head;
  std::int32_t count;
  std::int32_t min_dist;
  std::int32_t min_id;
  GPtr<Vertex> min_vert;
};

enum Site : SiteId {
  kVNext,     // v = v->next within a block (migrate-class, local)
  kVFld,      // v->dist / v->in_tree / v->id
  kBlkMin,    // blk->min_* reads in the combine walk (migrate)
  kBlkHead,   // relax body entry reads (migrate: moves the body)
  kBlkWr,     // blk->min_* writes at the end of a relax (local)
  kInit,
  kNumSites
};

/// Symmetric deterministic edge weight in [1, 100000].
std::int32_t edge_weight(std::int32_t a, std::int32_t b) {
  const std::uint64_t lo = static_cast<std::uint32_t>(a < b ? a : b);
  const std::uint64_t hi = static_cast<std::uint32_t>(a < b ? b : a);
  std::uint64_t x = (hi << 32) | lo;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<std::int32_t>(x % 100000) + 1;
}

int vertices_for(const BenchConfig& cfg) {
  if (cfg.tiny) return 256;
  return cfg.paper_size ? 1024 : 1024;
}

struct Built {
  std::vector<GPtr<Block>> blocks;  // root-local dispatch array
};

Task<Built> build(Machine& m, int n) {
  Built out;
  GPtr<Vertex> prev;
  std::vector<GPtr<Vertex>> firsts;  // first vertex of each block
  std::vector<std::int32_t> counts;
  std::vector<ProcId> owners;
  ProcId prev_owner = kMaxProcs;
  for (int i = 0; i < n; ++i) {
    const ProcId owner = block_owner(static_cast<std::uint64_t>(i),
                                     static_cast<std::uint64_t>(n), m.nprocs());
    auto v = m.alloc<Vertex>(owner);
    co_await wr(v, &Vertex::id, std::int32_t{i}, kInit);
    co_await wr(v, &Vertex::dist, i == 0 ? std::int32_t{0} : kInf, kInit);
    co_await wr(v, &Vertex::in_tree, std::int32_t{0}, kInit);
    if (prev) co_await wr(prev, &Vertex::next, v, kInit);
    if (owner != prev_owner) {
      firsts.push_back(v);
      counts.push_back(0);
      owners.push_back(owner);
      prev_owner = owner;
    }
    counts.back() += 1;
    prev = v;
  }
  for (std::size_t b = 0; b < firsts.size(); ++b) {
    auto blk = m.alloc<Block>(owners[b]);
    co_await wr(blk, &Block::head, firsts[b], kInit);
    co_await wr(blk, &Block::count, counts[b], kInit);
    co_await wr(blk, &Block::min_dist, kInf, kInit);
    co_await wr(blk, &Block::min_id, std::int32_t{-1}, kInit);
    out.blocks.push_back(blk);
  }
  co_return out;
}

struct MinFound {
  std::int32_t dist = kInf;
  std::int32_t id = -1;
  GPtr<Vertex> vert;
};

/// The BlueRule combine: visit each block's cached minimum, migrating
/// from processor to processor (the paper's synchronization migrations).
Task<MinFound> find_min(Machine& m, const std::vector<GPtr<Block>>& blocks) {
  MinFound best;
  for (const GPtr<Block>& blk : blocks) {
    const auto d = co_await rd(blk, &Block::min_dist, kBlkMin);
    m.work(kWorkPerScan);
    if (d < best.dist) {
      best.dist = d;
      best.id = co_await rd(blk, &Block::min_id, kBlkMin);
      best.vert = co_await rd(blk, &Block::min_vert, kBlkMin);
    }
  }
  co_return best;
}

/// Relax every vertex of the block against the newly added vertex and
/// recompute the block's minimum (all processor-local after the body
/// migrates in).
Task<int> relax_block(Machine& m, GPtr<Block> blk, std::int32_t new_id) {
  GPtr<Vertex> v = co_await rd(blk, &Block::head, kBlkHead);
  const auto count = co_await rd(blk, &Block::count, kBlkHead);
  std::int32_t best = kInf;
  std::int32_t best_id = -1;
  GPtr<Vertex> best_vert;
  for (std::int32_t i = 0; i < count; ++i) {
    const auto in_tree = co_await rd(v, &Vertex::in_tree, kVFld);
    if (!in_tree) {
      const auto id = co_await rd(v, &Vertex::id, kVFld);
      if (new_id >= 0) {
        const std::int32_t w = edge_weight(new_id, id);
        const auto d = co_await rd(v, &Vertex::dist, kVFld);
        if (w < d) co_await wr(v, &Vertex::dist, w, kVFld);
      }
      const auto nd = co_await rd(v, &Vertex::dist, kVFld);
      if (nd < best) {
        best = nd;
        best_id = id;
        best_vert = v;
      }
    }
    m.work(kWorkPerRelax);
    if (i + 1 < count) v = co_await rd(v, &Vertex::next, kVNext);
  }
  co_await wr(blk, &Block::min_dist, best, kBlkWr);
  co_await wr(blk, &Block::min_id, best_id, kBlkWr);
  co_await wr(blk, &Block::min_vert, best_vert, kBlkWr);
  co_return 0;
}

struct RootOut {
  std::int64_t total = 0;
  Cycles build_end = 0;
};

Task<RootOut> root(Machine& m, int n) {
  RootOut out;
  const Built b = co_await build(m, n);
  out.build_end = m.now_max();

  auto relax_all = [&](std::int32_t new_id) -> Task<int> {
    std::vector<Future<int>> fs;
    fs.reserve(b.blocks.size());
    for (const GPtr<Block>& blk : b.blocks) {
      fs.push_back(co_await futurecall(relax_block(m, blk, new_id)));
    }
    for (auto& f : fs) co_await touch(f);
    co_return 0;
  };

  // Seed: vertex 0 (dist 0) is the unique minimum; add it, then relax.
  co_await relax_all(-1);
  {
    const MinFound first = co_await find_min(m, b.blocks);
    co_await wr(first.vert, &Vertex::in_tree, std::int32_t{1}, kVFld);
    co_await relax_all(first.id);
  }

  for (int step = 1; step < n; ++step) {
    const MinFound best = co_await find_min(m, b.blocks);
    out.total += best.dist;
    co_await wr(best.vert, &Vertex::in_tree, std::int32_t{1}, kVFld);
    co_await relax_all(best.id);
  }
  co_return out;
}

class Mst final : public Benchmark {
 public:
  std::string name() const override { return "MST"; }
  std::string description() const override {
    return "Computes the minimum spanning tree of a graph";
  }
  std::string problem_size(bool) const override { return "1K nodes"; }
  bool whole_program_timing() const override { return false; }
  std::string heuristic_choice() const override { return "M"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    // Explicit hint (one of the paper's three): blocked layout,
    // 1 - (P-1)/(N-1) at P=32, N=1024.
    const double blocked = 1.0 - 31.0 / 1023.0;
    p.structs = {
        {"vertex", {{"next", blocked}, {"dist", std::nullopt},
                    {"in_tree", std::nullopt}, {"id", std::nullopt}}},
        {"block", {{"next", 0.95}, {"head", std::nullopt},
                   {"count", std::nullopt}}},
    };

    // The combine walk over per-processor minima; the programmer hints
    // the block chain high so it migrates (the synchronization pattern).
    Procedure fm;
    fm.name = "find_min";
    fm.params = {"blk"};
    While scan;
    scan.loop_id = 0;
    scan.body.push_back(deref("blk", kBlkMin));
    scan.body.push_back(
        assign("blk", "blk", {{"block", "next"}}, SiteId{kBlkMin}));
    fm.body.push_back(std::move(scan));
    p.procs.push_back(std::move(fm));

    Procedure rb;
    rb.name = "relax_block";
    rb.params = {"blk"};
    rb.body.push_back(deref("blk", kBlkHead));
    rb.body.push_back(deref("blk", kBlkWr));
    rb.body.push_back(
        assign("v", "blk", {{"block", "head"}}, SiteId{kBlkHead}));
    While relax;
    relax.loop_id = 1;
    relax.body.push_back(deref("v", kVFld));
    relax.body.push_back(
        assign("v", "v", {{"vertex", "next"}}, SiteId{kVNext}));
    rb.body.push_back(std::move(relax));
    p.procs.push_back(std::move(rb));

    Procedure main;
    main.name = "main";
    main.params = {"blocks"};
    While dispatch;
    dispatch.loop_id = 2;
    Call per_blk;
    per_blk.callee = "relax_block";
    per_blk.args = {{"blk", {}}};
    per_blk.future = true;
    dispatch.body.push_back(per_blk);
    dispatch.body.push_back(
        assign("blk", "blk", {{"block", "next"}}, SiteId{kBlkMin}));
    main.body.push_back(std::move(dispatch));
    p.procs.push_back(std::move(main));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    return {{kInit, Mechanism::kMigrate}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    const int n = vertices_for(cfg);
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    const RootOut out = run_program(m, root(m, n));
    res.checksum = static_cast<std::uint64_t>(out.total);
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    // Prim's algorithm on the same hashed weights.
    const int n = vertices_for(cfg);
    std::vector<std::int32_t> dist(static_cast<std::size_t>(n), kInf);
    std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
    dist[0] = 0;
    // Seed with vertex 0 exactly as the simulated version does.
    in_tree[0] = true;
    for (int i = 1; i < n; ++i) {
      dist[static_cast<std::size_t>(i)] = edge_weight(0, i);
    }
    std::int64_t total = 0;
    for (int step = 1; step < n; ++step) {
      std::int32_t best = kInf;
      int bi = -1;
      for (int i = 0; i < n; ++i) {
        if (!in_tree[static_cast<std::size_t>(i)] &&
            dist[static_cast<std::size_t>(i)] < best) {
          best = dist[static_cast<std::size_t>(i)];
          bi = i;
        }
      }
      total += best;
      in_tree[static_cast<std::size_t>(bi)] = true;
      for (int i = 0; i < n; ++i) {
        if (in_tree[static_cast<std::size_t>(i)]) continue;
        const std::int32_t w = edge_weight(bi, i);
        if (w < dist[static_cast<std::size_t>(i)]) {
          dist[static_cast<std::size_t>(i)] = w;
        }
      }
    }
    return static_cast<std::uint64_t>(total);
  }
};

}  // namespace

const Benchmark& mst_benchmark() {
  static const Mst b;
  return b;
}

}  // namespace olden::bench
