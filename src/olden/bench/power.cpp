// Power: the Power System Optimization problem (Table 1, [30]).
//
// A fixed four-level distribution network: root -> 10 feeders -> 20
// laterals each -> 5 branches each -> 10 customers each (10,000
// customers). Each pass the root publishes a price, every customer
// computes its demand, and currents are summed bottom-up through the
// network; the root then adjusts the price (a fixed number of
// gradient-style passes stands in for the original's convergence loop —
// same traversal, deterministic).
//
// Heuristic behaviour (§5): feeder and lateral walks are parallelizable
// loops, so they migrate; branch and customer walks cache, but a lateral's
// whole subtree is co-located, so those accesses are all processor-local —
// migration alone satisfies every *remote* reference, the paper's "M" row.
// Laterals (200 of them) are the distribution unit, which is what lets 32
// processors reach the paper's ~27x.
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/runtime/api.hpp"
#include "olden/support/rng.hpp"

namespace olden::bench {
namespace {

constexpr int kFeeders = 10;
constexpr int kLateralsPerFeeder = 20;
constexpr int kBranchesPerLateral = 5;
constexpr int kCustomersPerBranch = 10;
constexpr Cycles kWorkPerCustomer = 420;
constexpr Cycles kWorkPerBranch = 150;
constexpr Cycles kWorkPerLateral = 200;

struct Customer {
  double ad, bd;  // demand parameters
  GPtr<Customer> next;
};

struct Branch {
  double impedance;
  GPtr<Customer> customers;
  GPtr<Branch> next;
};

struct Lateral {
  double impedance;
  GPtr<Branch> branches;
  GPtr<Lateral> next;
};

/// A feeder holds its laterals as an array of pointers (as in the Olden
/// source): the dispatch loop indexes it locally and the futurecalled
/// lateral bodies migrate to their data, so dispatch never convoys.
struct Feeder {
  GPtr<Lateral> lats[kLateralsPerFeeder];
};

enum Site : SiteId {
  kFeederNext,   // f = f->next  (parallel walk: migrate)
  kFeederLats,   // f->laterals
  kLateralNext,  // l = l->next  (parallel walk: migrate)
  kLateralFld,   // l->impedance / l->branches
  kBranchNext,   // b = b->next  (serial walk: cache, but local)
  kBranchFld,
  kCustNext,
  kCustFld,
  kInit,
  kNumSites
};

struct Demand {
  double p = 0, q = 0;
};

int passes_for(const BenchConfig& cfg) {
  if (cfg.tiny) return 3;
  return cfg.paper_size ? 40 : 15;
}

// ---------------------------------------------------------------------------

Task<std::vector<GPtr<Feeder>>> build(Machine& m, Rng& rng) {
  std::vector<GPtr<Feeder>> feeders;
  int lat_index = 0;
  const int total_lats = kFeeders * kLateralsPerFeeder;
  static const Feeder probe{};
  for (int f = 0; f < kFeeders; ++f) {
    const ProcId fproc = block_owner(static_cast<std::uint64_t>(lat_index),
                                     total_lats, m.nprocs());
    auto feeder = m.alloc<Feeder>(fproc);
    feeders.push_back(feeder);
    for (int l = 0; l < kLateralsPerFeeder; ++l, ++lat_index) {
      const ProcId lproc = block_owner(static_cast<std::uint64_t>(lat_index),
                                       total_lats, m.nprocs());
      auto lateral = m.alloc<Lateral>(lproc);
      co_await wr(lateral, &Lateral::impedance, 0.05 + 0.1 * rng.next_double(),
                  kInit);
      GPtr<Branch> prev_b;
      for (int b = 0; b < kBranchesPerLateral; ++b) {
        auto branch = m.alloc<Branch>(lproc);
        co_await wr(branch, &Branch::impedance,
                    0.02 + 0.05 * rng.next_double(), kInit);
        GPtr<Customer> prev_c;
        for (int c = 0; c < kCustomersPerBranch; ++c) {
          auto cust = m.alloc<Customer>(lproc);
          co_await wr(cust, &Customer::ad, 1.0 + rng.next_double(), kInit);
          co_await wr(cust, &Customer::bd, 0.5 + rng.next_double(), kInit);
          if (prev_c) {
            co_await wr(prev_c, &Customer::next, cust, kInit);
          } else {
            co_await wr(branch, &Branch::customers, cust, kInit);
          }
          prev_c = cust;
        }
        if (prev_b) {
          co_await wr(prev_b, &Branch::next, branch, kInit);
        } else {
          co_await wr(lateral, &Lateral::branches, branch, kInit);
        }
        prev_b = branch;
      }
      const auto off = static_cast<std::uint32_t>(
          reinterpret_cast<const char*>(&probe.lats[l]) -
          reinterpret_cast<const char*>(&probe));
      co_await detail::WriteAwaiter<GPtr<Lateral>>{feeder.addr().plus(off),
                                                   kInit, lateral};
    }
  }
  co_return feeders;
}

detail::ReadAwaiter<GPtr<Lateral>> rd_lat(GPtr<Feeder> f, int i, SiteId site) {
  static const Feeder probe{};
  const auto off = static_cast<std::uint32_t>(
      reinterpret_cast<const char*>(&probe.lats[i]) -
      reinterpret_cast<const char*>(&probe));
  return {f.addr().plus(off), site};
}

Task<Demand> compute_lateral(Machine& m, GPtr<Lateral> l, double price) {
  Demand total;
  const double z = co_await rd(l, &Lateral::impedance, kLateralFld);
  GPtr<Branch> b = co_await rd(l, &Lateral::branches, kLateralFld);
  while (b) {
    Demand bsum;
    const double bz = co_await rd(b, &Branch::impedance, kBranchFld);
    GPtr<Customer> c = co_await rd(b, &Branch::customers, kBranchFld);
    while (c) {
      const double ad = co_await rd(c, &Customer::ad, kCustFld);
      const double bd = co_await rd(c, &Customer::bd, kCustFld);
      // Demand falls with price; reactive part tracks the real part.
      bsum.p += ad / (1.0 + price);
      bsum.q += bd / (1.0 + 0.5 * price);
      m.work(kWorkPerCustomer);
      c = co_await rd(c, &Customer::next, kCustNext);
    }
    // Line losses on the branch.
    total.p += bsum.p + bz * (bsum.p * bsum.p + bsum.q * bsum.q) * 0.01;
    total.q += bsum.q;
    m.work(kWorkPerBranch);
    b = co_await rd(b, &Branch::next, kBranchNext);
  }
  total.p += z * (total.p * total.p + total.q * total.q) * 0.001;
  m.work(kWorkPerLateral);
  co_return total;
}

Task<Demand> compute_feeder(Machine& m, GPtr<Feeder> f, double price) {
  std::vector<Future<Demand>> fs;
  fs.reserve(kLateralsPerFeeder);
  for (int i = 0; i < kLateralsPerFeeder; ++i) {
    // The first read migrates this body to the feeder's processor; the
    // lateral bodies in turn migrate to theirs at their first dereference.
    const GPtr<Lateral> l = co_await rd_lat(f, i, kFeederLats);
    fs.push_back(co_await futurecall(compute_lateral(m, l, price)));
  }
  Demand total;
  for (auto& fut : fs) {
    const Demand d = co_await touch(fut);
    total.p += d.p;
    total.q += d.q;
  }
  co_return total;
}

struct RootOut {
  double price = 0;
  double total_p = 0;
  Cycles build_end = 0;
};

Task<RootOut> root(Machine& m, std::uint64_t seed, int passes) {
  RootOut out;
  Rng rng(seed);
  const std::vector<GPtr<Feeder>> feeders = co_await build(m, rng);
  out.build_end = m.now_max();

  double price = 1.0;
  constexpr double kTargetLoad = 9000.0;
  double total = 0;
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<Future<Demand>> fs;
    for (const GPtr<Feeder>& f : feeders) {
      fs.push_back(co_await futurecall(compute_feeder(m, f, price)));
    }
    total = 0;
    for (auto& fut : fs) {
      const Demand d = co_await touch(fut);
      total += d.p;
    }
    // Gradient step on the price toward the target load.
    price += (total - kTargetLoad) * 1e-5;
  }
  out.price = price;
  out.total_p = total;
  co_return out;
}

// Host reference.
double reference_run(std::uint64_t seed, int passes, double* total_out) {
  Rng rng(seed);
  struct C {
    double ad, bd;
  };
  struct B {
    double z;
    std::vector<C> cs;
  };
  struct L {
    double z;
    std::vector<B> bs;
  };
  std::vector<std::vector<L>> feeders(kFeeders);
  for (auto& f : feeders) {
    f.resize(kLateralsPerFeeder);
    for (auto& l : f) {
      l.z = 0.05 + 0.1 * rng.next_double();
      l.bs.resize(kBranchesPerLateral);
      for (auto& b : l.bs) {
        b.z = 0.02 + 0.05 * rng.next_double();
        b.cs.resize(kCustomersPerBranch);
        for (auto& c : b.cs) {
          c.ad = 1.0 + rng.next_double();
          c.bd = 0.5 + rng.next_double();
        }
      }
    }
  }
  double price = 1.0;
  double total = 0;
  for (int pass = 0; pass < passes; ++pass) {
    total = 0;
    for (const auto& f : feeders) {
      double fp = 0, fq = 0;
      for (const auto& l : f) {
        double lp = 0, lq = 0;
        for (const auto& b : l.bs) {
          double bp = 0, bq = 0;
          for (const auto& c : b.cs) {
            bp += c.ad / (1.0 + price);
            bq += c.bd / (1.0 + 0.5 * price);
          }
          lp += bp + b.z * (bp * bp + bq * bq) * 0.01;
          lq += bq;
        }
        fp += lp + l.z * (lp * lp + lq * lq) * 0.001;
        fq += lq;
      }
      total += fp;
      (void)fq;
    }
    price += (total - 9000.0) * 1e-5;
  }
  if (total_out != nullptr) *total_out = total;
  return price;
}

class Power final : public Benchmark {
 public:
  std::string name() const override { return "Power"; }
  std::string description() const override {
    return "Solves the Power System Optimization problem";
  }
  std::string problem_size(bool) const override { return "10,000 customers"; }
  bool whole_program_timing() const override { return true; }
  std::string heuristic_choice() const override { return "M"; }
  std::size_t num_sites() const override { return kNumSites; }

  ir::Program ir_program() const override {
    using namespace ir;
    Program p;
    p.structs = {
        {"feeder", {{"next", std::nullopt}, {"lats", std::nullopt}}},
        {"lateral", {{"next", std::nullopt}, {"branches", std::nullopt},
                     {"impedance", std::nullopt}}},
        {"branch", {{"next", std::nullopt}, {"customers", std::nullopt}}},
        {"customer", {{"next", std::nullopt}}},
    };

    Procedure cl;
    cl.name = "compute_lateral";
    cl.params = {"l"};
    cl.body.push_back(deref("l", kLateralFld));
    cl.body.push_back(
        assign("b", "l", {{"lateral", "branches"}}, SiteId{kLateralFld}));
    While branches;
    branches.loop_id = 2;
    branches.body.push_back(
        assign("c", "b", {{"branch", "customers"}}, SiteId{kBranchFld}));
    While custs;
    custs.loop_id = 3;
    custs.body.push_back(deref("c", kCustFld));
    custs.body.push_back(
        assign("c", "c", {{"customer", "next"}}, SiteId{kCustNext}));
    branches.body.push_back(std::move(custs));
    branches.body.push_back(
        assign("b", "b", {{"branch", "next"}}, SiteId{kBranchNext}));
    cl.body.push_back(std::move(branches));
    p.procs.push_back(std::move(cl));

    Procedure cf;
    cf.name = "compute_feeder";
    cf.params = {"f"};
    While lats;  // for (i...) { l = f->lats[i]; futurecall(...); }
    lats.loop_id = 1;
    lats.body.push_back(
        assign("l", "f", {{"feeder", "lats"}}, SiteId{kFeederLats}));
    Call per_lat;
    per_lat.callee = "compute_lateral";
    per_lat.args = {{"l", {}}};
    per_lat.future = true;
    lats.body.push_back(per_lat);
    cf.body.push_back(std::move(lats));
    p.procs.push_back(std::move(cf));

    Procedure main;
    main.name = "main";
    main.params = {"feeders"};
    While fl;
    fl.loop_id = 0;
    Call per_f;
    per_f.callee = "compute_feeder";
    per_f.args = {{"f", {}}};
    per_f.future = true;
    fl.body.push_back(assign("f", "f", {{"feeder", "next"}},
                             SiteId{kFeederNext}));
    fl.body.push_back(per_f);
    main.body.push_back(std::move(fl));
    p.procs.push_back(std::move(main));
    return p;
  }

  std::vector<std::pair<SiteId, Mechanism>> site_overrides() const override {
    return {{kInit, Mechanism::kMigrate}};
  }

  BenchResult run(const BenchConfig& cfg) const override {
    BenchResult res;
    Machine m({.nprocs = cfg.nprocs,
               .scheme = cfg.scheme,
               .costs = {.sequential_baseline = cfg.sequential_baseline},
               .observer = cfg.observer,
               .faults = cfg.faults,
               .fault_seed = cfg.fault_seed,
               .adapt = cfg.adapt});
    m.set_site_mechanisms(site_table(cfg, &res.heuristic_report));
    const RootOut out = run_program(m, root(m, cfg.seed, passes_for(cfg)));
    res.checksum =
        mix_checksum(quantize(out.price, 1e9), quantize(out.total_p));
    res.build_cycles = out.build_end;
    res.total_cycles = m.makespan();
    res.kernel_cycles = res.total_cycles - res.build_cycles;
    res.stats = m.stats();
    return res;
  }

  std::uint64_t reference_checksum(const BenchConfig& cfg) const override {
    double total = 0;
    const double price = reference_run(cfg.seed, passes_for(cfg), &total);
    return mix_checksum(quantize(price, 1e9), quantize(total));
  }
};

}  // namespace

const Benchmark& power_benchmark() {
  static const Power b;
  return b;
}

}  // namespace olden::bench
